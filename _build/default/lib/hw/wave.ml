type probe = {
  name : string;
  width : int;
  sample_fn : unit -> int;
  mutable data : int array;
  mutable len : int;
}

type t = { mutable probes : probe list (* reversed *) }

let create () = { probes = [] }

let add_signal t ~name ~width f =
  if width < 1 || width > 62 then invalid_arg "Wave.add_signal: bad width";
  let p = { name; width; sample_fn = f; data = Array.make 64 0; len = 0 } in
  t.probes <- p :: t.probes

let probes_in_order t = List.rev t.probes

let push p v =
  if p.len = Array.length p.data then begin
    let bigger = Array.make (2 * p.len) 0 in
    Array.blit p.data 0 bigger 0 p.len;
    p.data <- bigger
  end;
  p.data.(p.len) <- v;
  p.len <- p.len + 1

let sample t =
  List.iter
    (fun p ->
      let mask = (1 lsl p.width) - 1 in
      push p (p.sample_fn () land mask))
    t.probes

let attach t clock = Rvi_sim.Clock.on_edge clock (fun _ -> sample t)

let length t = match t.probes with [] -> 0 | p :: _ -> p.len

let find t name =
  match List.find_opt (fun p -> p.name = name) t.probes with
  | Some p -> p
  | None -> raise Not_found

let values t name =
  let p = find t name in
  Array.sub p.data 0 p.len

(* One column of the diagram is [cell] characters wide; the first character
   carries the edge (transition) information. *)
let render_ascii ?(from_cycle = 0) ?cycles t =
  let total = length t in
  let n =
    match cycles with
    | Some n -> Stdlib.min n (total - from_cycle)
    | None -> total - from_cycle
  in
  let n = Stdlib.max n 0 in
  let name_w =
    List.fold_left (fun acc p -> Stdlib.max acc (String.length p.name)) 0 t.probes
  in
  let buf = Buffer.create 1024 in
  let cell = 4 in
  (* Header ruler with cycle numbers. *)
  Buffer.add_string buf (String.make (name_w + 2) ' ');
  for i = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "%-*d" cell (from_cycle + i))
  done;
  Buffer.add_char buf '\n';
  let render_probe p =
    Buffer.add_string buf (Printf.sprintf "%-*s  " name_w p.name);
    if p.width = 1 then
      for i = 0 to n - 1 do
        let v = p.data.(from_cycle + i) in
        let prev = if from_cycle + i = 0 then v else p.data.(from_cycle + i - 1) in
        let edge =
          if prev = v then if v = 1 then '-' else '_'
          else if v = 1 then '/'
          else '\\'
        in
        let level = if v = 1 then '-' else '_' in
        Buffer.add_char buf edge;
        Buffer.add_string buf (String.make (cell - 1) level)
      done
    else
      for i = 0 to n - 1 do
        let v = p.data.(from_cycle + i) in
        (* Always print the value in the first window column so a signal
           that last changed before the window is still readable. *)
        let prev =
          if i = 0 then -1 else p.data.(from_cycle + i - 1)
        in
        if v <> prev then begin
          let s = Printf.sprintf "%x" v in
          let s =
            if String.length s > cell - 1 then String.sub s 0 (cell - 1) else s
          in
          Buffer.add_char buf '|';
          Buffer.add_string buf s;
          Buffer.add_string buf (String.make (cell - 1 - String.length s) ' ')
        end
        else Buffer.add_string buf (String.make cell ' ')
      done
  in
  List.iter
    (fun p ->
      render_probe p;
      Buffer.add_char buf '\n')
    (probes_in_order t);
  Buffer.contents buf

let vcd_id i =
  (* Printable VCD identifier: base-94 over '!'..'~'. *)
  let rec go i acc =
    let c = Char.chr (33 + (i mod 94)) in
    let acc = String.make 1 c ^ acc in
    if i < 94 then acc else go ((i / 94) - 1) acc
  in
  go i ""

let to_vcd ?(timescale_ps = 1000) t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "$date reproduction run $end\n";
  Buffer.add_string buf "$version rvi Wave $end\n";
  Buffer.add_string buf (Printf.sprintf "$timescale %d ps $end\n" timescale_ps);
  Buffer.add_string buf "$scope module top $end\n";
  let probes = probes_in_order t in
  List.iteri
    (fun i p ->
      Buffer.add_string buf
        (Printf.sprintf "$var wire %d %s %s $end\n" p.width (vcd_id i) p.name))
    probes;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  let emit_value buf p i v =
    if p.width = 1 then Buffer.add_string buf (Printf.sprintf "%d%s\n" v (vcd_id i))
    else begin
      Buffer.add_char buf 'b';
      let any = ref false in
      for b = p.width - 1 downto 0 do
        let bit = (v lsr b) land 1 in
        if bit = 1 then any := true;
        if !any || b = 0 then Buffer.add_char buf (if bit = 1 then '1' else '0')
      done;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (vcd_id i);
      Buffer.add_char buf '\n'
    end
  in
  for cycle = 0 to length t - 1 do
    Buffer.add_string buf (Printf.sprintf "#%d\n" (cycle * timescale_ps));
    List.iteri
      (fun i p ->
        let v = p.data.(cycle) in
        let changed = cycle = 0 || p.data.(cycle - 1) <> v in
        if changed then emit_value buf p i v)
      probes
  done;
  Buffer.contents buf
