type page = int * int

let record imu =
  let acc = ref [] in
  let probe e =
    acc := (e.Rvi_core.Imu.obj_id, e.Rvi_core.Imu.vpn) :: !acc
  in
  Rvi_core.Imu.set_trace imu (Some probe);
  fun () ->
    Rvi_core.Imu.set_trace imu None;
    Array.of_list (List.rev !acc)

let distinct_pages refs =
  let seen = Hashtbl.create 64 in
  Array.iter (fun p -> Hashtbl.replace seen p ()) refs;
  Hashtbl.length seen

(* Mattson's stack algorithm with a simple list-based stack: traces here
   are short (thousands of references over tens of pages), so the O(depth)
   search per reference is immaterial. *)
let lru_stack_distances refs =
  let stack = ref [] in
  Array.map
    (fun p ->
      let rec split i acc = function
        | [] -> (None, List.rev acc)
        | q :: rest when q = p -> (Some i, List.rev_append acc rest)
        | q :: rest -> split (i + 1) (q :: acc) rest
      in
      let distance, remainder = split 0 [] !stack in
      stack := p :: remainder;
      distance)
    refs

let lru_misses refs ~max_frames =
  if max_frames < 1 then invalid_arg "Mrc.lru_misses: max_frames < 1";
  let distances = lru_stack_distances refs in
  (* By the inclusion property, a reference at stack distance d misses in
     every pool of size <= d. *)
  let misses = Array.make max_frames 0 in
  Array.iter
    (fun d ->
      (* A reference at stack distance d hits in every pool of at least
         d + 1 frames and misses in all smaller ones. *)
      let first_hit_size = match d with Some d -> d + 1 | None -> max_int in
      for k = 1 to max_frames do
        if k < first_hit_size then misses.(k - 1) <- misses.(k - 1) + 1
      done)
    distances;
  misses

let fifo_misses refs ~frames =
  if frames < 1 then invalid_arg "Mrc.fifo_misses: frames < 1";
  let queue = Queue.create () in
  let resident = Hashtbl.create 64 in
  let misses = ref 0 in
  Array.iter
    (fun p ->
      if not (Hashtbl.mem resident p) then begin
        incr misses;
        if Hashtbl.length resident = frames then begin
          let victim = Queue.pop queue in
          Hashtbl.remove resident victim
        end;
        Hashtbl.replace resident p ();
        Queue.push p queue
      end)
    refs;
  !misses

let pp_curve ppf ~frames_available ~lru ~refs =
  Format.fprintf ppf "frames  LRU misses  miss ratio@.";
  Array.iteri
    (fun i m ->
      let k = i + 1 in
      Format.fprintf ppf "%5d %11d  %8.2f%%%s@." k m
        (100.0 *. float_of_int m /. float_of_int (max 1 refs))
        (if k = frames_available then "   <- this device" else ""))
    lru

let opt_misses refs ~frames =
  if frames < 1 then invalid_arg "Mrc.opt_misses: frames < 1";
  let n = Array.length refs in
  (* next.(i) = index of the next reference to refs.(i) after i, or n. *)
  let next = Array.make n n in
  let last = Hashtbl.create 64 in
  for i = n - 1 downto 0 do
    (match Hashtbl.find_opt last refs.(i) with
    | Some j -> next.(i) <- j
    | None -> next.(i) <- n);
    Hashtbl.replace last refs.(i) i
  done;
  let resident = Hashtbl.create 16 in
  (* page -> next use index *)
  let misses = ref 0 in
  Array.iteri
    (fun i p ->
      if Hashtbl.mem resident p then Hashtbl.replace resident p next.(i)
      else begin
        incr misses;
        if Hashtbl.length resident = frames then begin
          (* Belady: evict the resident page used farthest in the future. *)
          let victim, _ =
            Hashtbl.fold
              (fun q u (bq, bu) -> if u > bu then (q, u) else (bq, bu))
              resident
              (p, -1)
          in
          Hashtbl.remove resident victim
        end;
        Hashtbl.replace resident p next.(i)
      end)
    refs;
  !misses
