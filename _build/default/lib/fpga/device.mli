(** Reconfigurable-SoC device catalogue.

    The paper demonstrates the system on an Altera Excalibur EPXA1 and notes
    that porting to the larger EPXA4/EPXA10 parts — which differ in PLD size
    and dual-port memory size — requires only recompiling the kernel module.
    This catalogue carries the parameters the experiments depend on; logic
    element counts are the published device capacities and dual-port RAM
    sizes grow with the family as in the datasheets (the EPXA1 figure of
    eight 2 KB pages is the one the paper states). *)

type t = {
  name : string;
  logic_elements : int;  (** PLD capacity available to coprocessors + IMU *)
  dpram_bytes : int;  (** dual-port RAM reachable by PLD and CPU *)
  page_size : int;  (** OS page granule inside the dual-port RAM *)
  cpu_freq_hz : int;  (** ARM-stripe processor clock *)
  ahb : Rvi_mem.Ahb.t;  (** CPU <-> dual-port RAM transfer costs *)
}

val epxa1 : t
(** The paper's board: ARM at 133 MHz, 16 KB dual-port RAM as 8 x 2 KB. *)

val epxa4 : t
val epxa10 : t

val xc2vp7 : t
(** The cross-vendor port: a Xilinx Virtex-II Pro (the paper's other cited
    platform family) — PowerPC 405 at 300 MHz, 32 KB of block RAM as eight
    4 KB pages, PLB bus costs. *)

val all : t list

val by_name : string -> t option
(** Case-insensitive lookup, e.g. ["EPXA4"]. *)

val geometry : t -> Rvi_mem.Page.geometry
(** Page geometry of the device's dual-port RAM. *)

val pp : Format.formatter -> t -> unit
