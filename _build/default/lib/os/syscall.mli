(** System-call table.

    The virtualisation layer adds three services — [FPGA_LOAD],
    [FPGA_MAP_OBJECT] and [FPGA_EXECUTE] — registered here by the VIM
    module. Numbers mirror a real syscall table: dense small integers,
    dispatch by index, integer arguments and result (negative = errno). *)

type result = int
(** Non-negative on success; a negated {!errno} on failure. *)

type errno = ENOSYS | EINVAL | EBUSY | ENOMEM | ENOSPC | EFAULT | EIO

val errno_code : errno -> int
(** Positive code (e.g. [EINVAL] = 22, matching Linux). *)

val errno_of_code : int -> errno option
val errno_name : errno -> string

val err : errno -> result
(** [err e] is [- errno_code e]. *)

val fpga_load : int
val fpga_map_object : int
val fpga_execute : int
val fpga_unload : int
(** The four service numbers (3200..3203, an unused range). *)

type t

val create : unit -> t

val register : t -> number:int -> name:string -> (int array -> result) -> unit
(** Raises [Invalid_argument] if the number is already bound. *)

val name_of : t -> number:int -> string option

val dispatch : t -> number:int -> int array -> result
(** Runs the handler; unknown numbers return [-ENOSYS]. *)

val invocations : t -> (string * int) list
(** Per-syscall invocation counts. *)
