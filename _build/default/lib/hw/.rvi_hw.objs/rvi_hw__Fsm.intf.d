lib/hw/fsm.mli:
