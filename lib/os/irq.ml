type line_state = {
  mutable handler : (string * (unit -> unit)) option;
  mutable pending : bool;
}

type t = {
  lines : line_state array;
  mutable raised_total : int;
  mutable observer : (line:int -> name:string -> unit) option;
  mutable wake : (unit -> unit) option;
      (* called when a line turns pending, so an inline-batched clock run
         ends its batch and the driving loop notices the interrupt *)
  stats : Rvi_sim.Stats.t;
  mutable injector : Rvi_inject.Injector.t option;
}

let create ?(lines = 8) () =
  if lines < 1 then invalid_arg "Irq.create: need at least one line";
  {
    lines = Array.init lines (fun _ -> { handler = None; pending = false });
    raised_total = 0;
    observer = None;
    wake = None;
    stats = Rvi_sim.Stats.create ();
    injector = None;
  }

let set_observer t obs = t.observer <- obs
let set_wake t f = t.wake <- f
let set_injector t inj = t.injector <- inj
let stats t = t.stats

let check t line op =
  if line < 0 || line >= Array.length t.lines then
    invalid_arg (Printf.sprintf "Irq.%s: line %d out of range" op line)

let register t ~line ~name f =
  check t line "register";
  match t.lines.(line).handler with
  | Some (existing, _) ->
    invalid_arg
      (Printf.sprintf "Irq.register: line %d already claimed by %s" line existing)
  | None -> t.lines.(line).handler <- Some (name, f)

let raise_line t ~line =
  check t line "raise_line";
  match t.injector with
  | Some inj when Rvi_inject.Injector.fire inj Rvi_inject.Fault.Irq_lost ->
    (* The edge never reaches the controller — a glitched line. The device
       keeps its status register, so software can still recover by polling. *)
    Rvi_sim.Stats.incr t.stats "dropped_raises"
  | _ ->
    if t.lines.(line).pending then
      (* Level-triggered: a second edge while already pending coalesces
         into the one pending state instead of faulting the controller. *)
      Rvi_sim.Stats.incr t.stats "coalesced_raises"
    else begin
      t.lines.(line).pending <- true;
      t.raised_total <- t.raised_total + 1;
      (match t.wake with Some f -> f () | None -> ());
      match t.observer with
      | Some f ->
        let name =
          match t.lines.(line).handler with Some (n, _) -> n | None -> "?"
        in
        f ~line ~name
      | None -> ()
    end

let any_pending t = Array.exists (fun l -> l.pending) t.lines

let dispatch_one t =
  let rec find i =
    if i >= Array.length t.lines then None
    else if t.lines.(i).pending then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> false
  | Some i ->
    t.lines.(i).pending <- false;
    (match t.lines.(i).handler with
    | Some (_, f) -> f ()
    | None ->
      (* A pending line nobody claimed: tolerate it as spurious rather
         than bringing the kernel down — noisy hardware does this. *)
      Rvi_sim.Stats.incr t.stats "spurious_irqs");
    true

let dispatch_all t =
  let rec go n = if dispatch_one t then go (n + 1) else n in
  go 0

let raised_total t = t.raised_total

(* Platform pooling: clear pending lines and counters while keeping the
   structural wiring — registered handlers and the engine-break wake hook.
   The observer and injector are per-run attachments; the platform reset
   re-installs them from the next run's configuration. *)
let reset t =
  Array.iter (fun l -> l.pending <- false) t.lines;
  t.raised_total <- 0;
  t.observer <- None;
  t.injector <- None;
  Rvi_sim.Stats.reset t.stats
