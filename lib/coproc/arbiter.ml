module Cp_port = Rvi_core.Cp_port

let slot_words = 16

type request = {
  obj_id : int;
  addr : int;
  wr : bool;
  width : Cp_port.width;
  data : int;
}

type t = {
  upstream : Cp_port.t;
  ports : Cp_port.t array;
  queued : request option array; (* one outstanding request per child *)
  mutable inflight : int option; (* child whose request is at the IMU *)
  mutable rr : int; (* round-robin cursor *)
  grants : int array;
  (* values computed this cycle, committed at the edge *)
  mutable out_req : request option;
  mutable out_resp : (int * int) option; (* child, data *)
  mutable out_start : bool;
  mutable out_fin : bool;
}

let create ~upstream ~children =
  if children < 1 || children > 4 then
    invalid_arg "Arbiter.create: children out of [1, 4]";
  {
    upstream;
    ports = Array.init children (fun _ -> Cp_port.create ());
    queued = Array.make children None;
    inflight = None;
    rr = 0;
    grants = Array.make children 0;
    out_req = None;
    out_resp = None;
    out_start = false;
    out_fin = false;
  }

let child_port t i =
  if i < 0 || i >= Array.length t.ports then
    invalid_arg "Arbiter.child_port: no such child";
  t.ports.(i)

let grants t = Array.copy t.grants

(* Parameter reads are relocated into the child's private slot of the
   parameter page. *)
let relocate ~child r =
  if r.obj_id = Cp_port.param_obj then
    { r with addr = r.addr + (child * 4 * slot_words) }
  else r

let compute t =
  let n = Array.length t.ports in
  (* Route the upstream response to its issuer. *)
  t.out_resp <- None;
  (if t.upstream.Cp_port.cp_tlbhit then
     match t.inflight with
     | Some child ->
       t.out_resp <- Some (child, t.upstream.Cp_port.cp_din);
       t.inflight <- None
     | None -> ());
  (* Re-broadcast the start pulse. *)
  t.out_start <- t.upstream.Cp_port.cp_start;
  (* Capture child request pulses (at most one outstanding each). *)
  Array.iteri
    (fun i p ->
      if p.Cp_port.cp_access then
        t.queued.(i) <-
          Some
            (relocate ~child:i
               {
                 obj_id = p.Cp_port.cp_obj;
                 addr = p.Cp_port.cp_addr;
                 wr = p.Cp_port.cp_wr;
                 width = p.Cp_port.cp_width;
                 data = p.Cp_port.cp_dout;
               }))
    t.ports;
  (* Grant round-robin when the upstream is free. *)
  t.out_req <- None;
  (if t.inflight = None then
     let rec pick k =
       if k < n then begin
         let i = (t.rr + k) mod n in
         match t.queued.(i) with
         | Some r ->
           t.queued.(i) <- None;
           t.inflight <- Some i;
           t.rr <- (i + 1) mod n;
           t.grants.(i) <- t.grants.(i) + 1;
           t.out_req <- Some r
         | None -> pick (k + 1)
       end
     in
     pick 0);
  (* Completion: every child holds CP_FIN. *)
  t.out_fin <- Array.for_all (fun p -> p.Cp_port.cp_fin) t.ports

let commit t =
  let u = t.upstream in
  (match t.out_req with
  | Some r ->
    u.Cp_port.cp_obj <- r.obj_id;
    u.Cp_port.cp_addr <- r.addr;
    u.Cp_port.cp_wr <- r.wr;
    u.Cp_port.cp_width <- r.width;
    u.Cp_port.cp_dout <- r.data;
    u.Cp_port.cp_access <- true
  | None -> u.Cp_port.cp_access <- false);
  u.Cp_port.cp_fin <- t.out_fin;
  Array.iteri
    (fun i p ->
      p.Cp_port.cp_start <- t.out_start;
      match t.out_resp with
      | Some (child, data) when child = i ->
        p.Cp_port.cp_tlbhit <- true;
        p.Cp_port.cp_din <- data
      | Some _ | None -> p.Cp_port.cp_tlbhit <- false)
    t.ports

let component t =
  Rvi_sim.Clock.component ~name:"arbiter"
    ~compute:(fun () -> compute t)
    ~commit:(fun () -> commit t)
    ()
