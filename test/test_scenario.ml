(* Tests for the chaos scenario harness (rvi_scenario): serde
   round-trips, generator determinism, invariant classification, the
   shrinker acceptance, the pinned corpus regressions, the reified VIM
   recovery transition table, and merge/summary identities for the
   recovery counters that parallel campaigns depend on. *)

module Simtime = Rvi_sim.Simtime
module Stats = Rvi_sim.Stats
module Fault = Rvi_inject.Fault
module Spec = Rvi_inject.Spec
module Vim = Rvi_core.Vim
module Faults = Rvi_harness.Faults
module Scenario = Rvi_scenario.Scenario
module Chaos = Rvi_scenario.Chaos

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let roundtrip sc =
  match Scenario.of_string (Scenario.to_string sc) with
  | Ok sc' -> sc'
  | Error m -> Alcotest.fail ("scenario does not parse back: " ^ m)

(* {1 Serialisation} *)

let test_roundtrip () =
  checkb "default round-trips" true (roundtrip Scenario.default = Scenario.default);
  checkb "known-bad round-trips" true
    (roundtrip Scenario.known_bad = Scenario.known_bad);
  for i = 0 to 19 do
    let sc = Scenario.generate ~seed:7 ~index:i in
    checkb (Printf.sprintf "generated %d round-trips bit-exactly" i) true
      (roundtrip sc = sc)
  done;
  checkb "junk rejected" true
    (Result.is_error (Scenario.of_string "seed=1;bogus=2"));
  checkb "unknown app rejected" true
    (Result.is_error (Scenario.of_string "apps=quicksort"))

let test_generator_deterministic () =
  let a = Scenario.generate ~seed:11 ~index:3 in
  checkb "same (seed, index) regenerates identically" true
    (a = Scenario.generate ~seed:11 ~index:3);
  checkb "different index differs" true
    (a <> Scenario.generate ~seed:11 ~index:4);
  checkb "different seed differs" true
    (a <> Scenario.generate ~seed:12 ~index:3)

(* {1 Classification} *)

(* The seeded adversarial scenario: hang + lost IRQ with the watchdog
   disabled can never reclaim the interface, so the progress invariant
   must flag it. *)
let test_known_bad_classifies () =
  let r = Chaos.run Scenario.known_bad in
  checks "progress violation" "progress-gap" (Chaos.classification r)

(* Satellite regression: a saturated page-table-walker fault stream in
   SVA mode must ride the severity ladder — Walk_failed is transient, the
   runner's execute retries exhaust, and the verified software fallback
   answers. Historically the fallback was keyed on the EIO errno alone
   and an SVA run could fail outright instead of degrading. *)
let test_sva_degraded_run () =
  let sc =
    {
      Scenario.default with
      Scenario.translation = Rvi_core.Translation_mode.Iommu_sva;
      rates = [ { Spec.kind = Fault.Ptw_error; rate = 1.0 } ];
    }
  in
  let r = Chaos.run sc in
  checks "degrade, not failure" "pass" (Chaos.classification r);
  List.iter
    (fun rr ->
      match rr.Faults.outcome with
      | Faults.Degraded { verified = true; _ } -> ()
      | o ->
        Alcotest.fail
          ("expected a verified degrade, got " ^ Faults.outcome_name o))
    r.Chaos.runs

(* {1 Shrinking} *)

let test_shrinker_acceptance () =
  let cls = Chaos.classification (Chaos.run Scenario.known_bad) in
  let small = Chaos.shrink ~cls Scenario.known_bad in
  checkb "measure strictly decreased" true
    (Scenario.measure small < Scenario.measure Scenario.known_bad);
  checkb "at most 3 fault events" true (List.length small.Scenario.events <= 3);
  checks "classification preserved" cls
    (Chaos.classification (Chaos.run small));
  (* the minimal repro replays through its serialised form *)
  checks "serialised repro replays" cls
    (Chaos.classification (Chaos.run (roundtrip small)))

(* {1 The pinned corpus}

   Every promoted repro under test/corpus/ replays with the
   classification its [# expect:] header records. *)
let test_corpus_replays () =
  let dir = "corpus" in
  checkb "corpus directory present" true (Sys.file_exists dir);
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".scenario")
    |> List.sort compare
  in
  checkb "at least one pinned repro" true (files <> []);
  List.iter
    (fun f ->
      match Chaos.replay (Filename.concat dir f) with
      | Ok _ -> ()
      | Error m -> Alcotest.fail (f ^ ": " ^ m))
    files

(* {1 The recovery transition table}

   [Vim.decide] is the machine every recovery path dispatches through;
   enumerate it: total, Retry only within the budget, terminal past it,
   Poll only for lost interrupts, hangs abort, and only bad output
   degrades. *)

let prop_recovery_table =
  QCheck.Test.make ~name:"recovery table: total, bounded, terminal"
    ~count:300
    QCheck.(
      triple
        (int_bound (List.length Vim.all_fault_classes - 1))
        (int_range 1 9) (int_bound 5))
    (fun (ci, attempt, max_retries) ->
      let cls = List.nth Vim.all_fault_classes ci in
      let r = { Vim.default_recovery with Vim.max_retries } in
      let a = Vim.decide r ~cls ~attempt in
      let beyond = attempt > max_retries in
      let well_formed =
        match a with
        | Vim.Retry _ -> not beyond
        | Vim.Poll -> cls = Vim.Lost_irq
        | Vim.Abort | Vim.Degrade -> true
      in
      let per_class =
        match cls with
        | Vim.Hang -> a = Vim.Abort
        | Vim.Lost_irq -> a = Vim.Poll
        | Vim.Bad_output ->
          if beyond then a = Vim.Degrade
          else a = Vim.Retry { backoff = Simtime.zero }
        | Vim.Walk_error ->
          if beyond then a = Vim.Abort
          else a = Vim.Retry { backoff = Simtime.zero }
        | Vim.Copy_error -> (
          if beyond then a = Vim.Abort
          else match a with Vim.Retry _ -> true | _ -> false)
      in
      well_formed && per_class)

let test_recovery_never_wedges () =
  (* Follow the machine through successive failures of one operation:
     every class reaches a non-Retry action within budget + 1 steps. *)
  let r = { Vim.default_recovery with Vim.max_retries = 3 } in
  List.iter
    (fun cls ->
      let rec follow attempt =
        if attempt > 10 then Alcotest.fail "recovery machine wedged"
        else
          match Vim.decide r ~cls ~attempt with
          | Vim.Retry _ -> follow (attempt + 1)
          | Vim.Poll | Vim.Abort | Vim.Degrade -> attempt
      in
      checkb
        (Vim.fault_class_name cls ^ " terminates within the budget")
        true
        (follow 1 <= r.Vim.max_retries + 1))
    Vim.all_fault_classes;
  checkb "attempt 0 rejected" true
    (try
       ignore (Vim.decide r ~cls:Vim.Copy_error ~attempt:0);
       false
     with Invalid_argument _ -> true)

(* {1 Merge and summary identities}

   Parallel campaigns merge per-shard stats and concatenate per-shard
   results; the recovery counters and the Degraded tallies must come out
   the same as a serial run. *)

let recovery_counters =
  [
    "copy_retries"; "copy_retries_exhausted"; "walk_retries";
    "walk_retries_exhausted"; "watchdog_fires"; "spurious_irqs";
    "lost_irq_recovered";
  ]

let test_stats_merge_identity () =
  let src = Stats.create () in
  List.iteri
    (fun i name -> Stats.incr ~by:(i + 1) src name)
    recovery_counters;
  let into = Stats.create () in
  Stats.merge_into ~into src;
  checkb "merge into empty is the identity" true
    (Stats.counters into = Stats.counters src);
  Stats.merge_into ~into src;
  List.iteri
    (fun i name ->
      checki (name ^ " adds") (2 * (i + 1)) (Stats.get into name))
    recovery_counters

let prop_summarize_additive =
  let arb_outcome =
    QCheck.Gen.oneofl
      [
        Faults.Clean;
        Faults.Recovered { retries = 1 };
        Faults.Degraded { reason = "r"; verified = true };
        Faults.Degraded { reason = "r"; verified = false };
        Faults.Failed "f";
        Faults.Crashed "c";
      ]
  in
  let arb_results =
    QCheck.make
      QCheck.Gen.(
        list_size (int_bound 12)
          (map
             (fun o ->
               {
                 Faults.index = 0;
                 seed = 1;
                 app = "adpcm";
                 outcome = o;
                 injected = 2;
                 total_ms = 1.0;
               })
             arb_outcome))
  in
  QCheck.Test.make ~name:"summarize is additive over concatenation"
    ~count:100 (QCheck.pair arb_results arb_results)
    (fun (a, b) ->
      let s = Faults.summarize (a @ b) in
      let sa = Faults.summarize a and sb = Faults.summarize b in
      s.Faults.runs = sa.Faults.runs + sb.Faults.runs
      && s.Faults.clean = sa.Faults.clean + sb.Faults.clean
      && s.Faults.recovered = sa.Faults.recovered + sb.Faults.recovered
      && s.Faults.degraded = sa.Faults.degraded + sb.Faults.degraded
      && s.Faults.failed = sa.Faults.failed + sb.Faults.failed
      && s.Faults.crashed = sa.Faults.crashed + sb.Faults.crashed
      && s.Faults.injected = sa.Faults.injected + sb.Faults.injected
      && s.Faults.bad_degraded = sa.Faults.bad_degraded + sb.Faults.bad_degraded)

(* {1 Campaign determinism} *)

let classifications reports =
  List.map (fun r -> (r.Chaos.index, Chaos.classification r)) reports

let test_campaign_deterministic () =
  let a = Chaos.campaign ~seed:42 ~count:8 () in
  let b = Chaos.campaign ~seed:42 ~count:8 () in
  checkb "same seed replays identically" true
    (classifications a = classifications b);
  let s = Chaos.summarize a in
  checki "every scenario classified" 8 s.Chaos.scenarios;
  checki "generated envelope passes" 8 s.Chaos.passes

let test_campaign_parallel_matches_serial () =
  let serial = Chaos.campaign ~seed:1 ~count:6 () in
  let par = Chaos.campaign ~jobs:2 ~seed:1 ~count:6 () in
  checkb "jobs do not change the classification" true
    (classifications serial = classifications par)

let suite =
  [
    Alcotest.test_case "scenario/roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "scenario/generator-deterministic" `Quick
      test_generator_deterministic;
    Alcotest.test_case "chaos/known-bad-progress-gap" `Quick
      test_known_bad_classifies;
    Alcotest.test_case "chaos/sva-degraded-run" `Quick test_sva_degraded_run;
    Alcotest.test_case "chaos/shrinker-acceptance" `Slow
      test_shrinker_acceptance;
    Alcotest.test_case "chaos/corpus-replays" `Quick test_corpus_replays;
    QCheck_alcotest.to_alcotest prop_recovery_table;
    Alcotest.test_case "recovery/never-wedges" `Quick
      test_recovery_never_wedges;
    Alcotest.test_case "stats/merge-identity" `Quick test_stats_merge_identity;
    QCheck_alcotest.to_alcotest prop_summarize_additive;
    Alcotest.test_case "chaos/campaign-deterministic" `Slow
      test_campaign_deterministic;
    Alcotest.test_case "chaos/campaign-parallel" `Slow
      test_campaign_parallel_matches_serial;
  ]
