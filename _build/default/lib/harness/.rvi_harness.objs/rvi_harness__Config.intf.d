lib/harness/config.mli: Rvi_core Rvi_fpga
