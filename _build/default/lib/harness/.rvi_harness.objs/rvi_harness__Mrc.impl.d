lib/harness/mrc.ml: Array Format Hashtbl List Queue Rvi_core
