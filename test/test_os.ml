(* Unit tests for the simulated operating system (rvi_os). *)

module Simtime = Rvi_sim.Simtime
module Engine = Rvi_sim.Engine
module Cost_model = Rvi_os.Cost_model
module Accounting = Rvi_os.Accounting
module Irq = Rvi_os.Irq
module Proc = Rvi_os.Proc
module Sched = Rvi_os.Sched
module Syscall = Rvi_os.Syscall
module Kernel = Rvi_os.Kernel
module Uspace = Rvi_os.Uspace

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let cost = Cost_model.default ~cpu_freq_hz:133_000_000

let fresh_kernel () =
  let engine = Engine.create () in
  (engine, Kernel.create ~engine ~cost ~sdram_bytes:(1024 * 1024) ())

(* {1 Cost_model} *)

let test_cost_model () =
  checki "1 cycle at 133MHz" 7518 (Simtime.to_ps (Cost_model.time_of_cycles cost 1));
  checki "roundtrip" 1000 (Cost_model.cycles_of_time cost (Cost_model.time_of_cycles cost 1000));
  Alcotest.check_raises "negative cycles"
    (Invalid_argument "Cost_model.time_of_cycles: negative cycles") (fun () ->
      ignore (Cost_model.time_of_cycles cost (-1)))

(* {1 Accounting} *)

let test_accounting () =
  let a = Accounting.create () in
  Accounting.add a Accounting.Hw (Simtime.of_ms 3);
  Accounting.add a Accounting.Sw_dp (Simtime.of_ms 1);
  Accounting.add a Accounting.Hw (Simtime.of_ms 2);
  checki "hw" 5 (int_of_float (Simtime.to_ms (Accounting.get a Accounting.Hw)));
  checki "total" 6 (int_of_float (Simtime.to_ms (Accounting.total a)));
  Alcotest.(check (float 1e-6)) "fraction" (5.0 /. 6.0)
    (Accounting.fraction a Accounting.Hw);
  Accounting.reset a;
  checki "reset" 0 (Simtime.to_ps (Accounting.total a));
  Alcotest.(check (float 1e-6)) "fraction of empty" 0.0
    (Accounting.fraction a Accounting.Hw);
  checki "all categories" 5 (List.length Accounting.categories)

(* {1 Irq} *)

let test_irq_dispatch () =
  let irq = Irq.create () in
  let log = ref [] in
  Irq.register irq ~line:3 ~name:"three" (fun () -> log := 3 :: !log);
  Irq.register irq ~line:1 ~name:"one" (fun () -> log := 1 :: !log);
  checkb "idle" false (Irq.any_pending irq);
  Irq.raise_line irq ~line:3;
  Irq.raise_line irq ~line:1;
  Irq.raise_line irq ~line:1;
  (* level-triggered: no double-count while pending *)
  checki "raised total" 2 (Irq.raised_total irq);
  checkb "pending" true (Irq.any_pending irq);
  checki "dispatched all" 2 (Irq.dispatch_all irq);
  (* line 1 has priority over line 3, so it runs first and ends up deeper
     in the log *)
  Alcotest.(check (list int)) "priority order" [ 3; 1 ] !log

let test_irq_errors () =
  let irq = Irq.create ~lines:2 () in
  Alcotest.check_raises "line range"
    (Invalid_argument "Irq.raise_line: line 5 out of range") (fun () ->
      Irq.raise_line irq ~line:5);
  Irq.register irq ~line:0 ~name:"a" ignore;
  Alcotest.check_raises "double claim"
    (Invalid_argument "Irq.register: line 0 already claimed by a") (fun () ->
      Irq.register irq ~line:0 ~name:"b" ignore);
  (* A pending line without a handler is a spurious interrupt: counted
     and dropped, never fatal — real controllers see glitched lines. *)
  Irq.raise_line irq ~line:1;
  checkb "spurious dispatch consumed" true (Irq.dispatch_one irq);
  checki "spurious counted" 1
    (Rvi_sim.Stats.get (Irq.stats irq) "spurious_irqs");
  checkb "nothing left pending" false (Irq.any_pending irq)

(* {1 Proc} *)

let test_proc_transitions () =
  let p = Proc.make ~pid:7 ~name:"worker" in
  checkb "starts ready" true (p.Proc.state = Proc.Ready);
  Proc.set_state p Proc.Running;
  Proc.set_state p Proc.Sleeping;
  Proc.set_state p Proc.Ready;
  checki "wakeups counted" 1 p.Proc.wakeups;
  Proc.set_state p Proc.Running;
  Proc.set_state p Proc.Exited;
  Alcotest.check_raises "no resurrection"
    (Invalid_argument "Proc.set_state: worker: illegal exited -> ready")
    (fun () -> Proc.set_state p Proc.Ready)

let test_proc_illegal () =
  let p = Proc.make ~pid:1 ~name:"p" in
  Alcotest.check_raises "ready cannot sleep"
    (Invalid_argument "Proc.set_state: p: illegal ready -> sleeping") (fun () ->
      Proc.set_state p Proc.Sleeping)

(* {1 Sched} *)

let test_sched_round_robin () =
  let s = Sched.create () in
  let a = Sched.spawn s ~name:"a" in
  let b = Sched.spawn s ~name:"b" in
  checkb "idle initially" true ((Sched.current s).Proc.pid = 0);
  let first = Sched.schedule s in
  let second = Sched.schedule s in
  let third = Sched.schedule s in
  checkb "alternates" true
    (first.Proc.pid = a.Proc.pid
    && second.Proc.pid = b.Proc.pid
    && third.Proc.pid = a.Proc.pid);
  checkb "switches counted" true (Sched.context_switches s >= 3)

let test_sched_sleep_wake () =
  let s = Sched.create () in
  let a = Sched.spawn s ~name:"a" in
  ignore (Sched.schedule s);
  Sched.sleep_current s;
  checkb "idle runs while sleeping" true ((Sched.current s).Proc.pid = 0);
  Sched.wake s ~pid:a.Proc.pid;
  checkb "woken is ready" true (a.Proc.state = Proc.Ready);
  let next = Sched.schedule s in
  checkb "woken scheduled" true (next.Proc.pid = a.Proc.pid)

let test_sched_exit () =
  let s = Sched.create () in
  let a = Sched.spawn s ~name:"a" in
  ignore (Sched.schedule s);
  Sched.exit_current s;
  checkb "exited" true (a.Proc.state = Proc.Exited);
  checkb "idle after exit" true ((Sched.current s).Proc.pid = 0);
  checki "process list" 2 (List.length (Sched.processes s))

let test_sched_idle_protections () =
  let s = Sched.create () in
  Alcotest.check_raises "idle cannot sleep"
    (Invalid_argument "Sched.sleep_current: idle task cannot sleep") (fun () ->
      Sched.sleep_current s)

(* {1 Syscall} *)

let test_syscall_dispatch () =
  let t = Syscall.create () in
  Syscall.register t ~number:9 ~name:"nine" (fun args -> Array.fold_left ( + ) 0 args);
  checki "dispatch" 6 (Syscall.dispatch t ~number:9 [| 1; 2; 3 |]);
  checki "enosys" (Syscall.err Syscall.ENOSYS) (Syscall.dispatch t ~number:1 [||]);
  checkb "name" true (Syscall.name_of t ~number:9 = Some "nine");
  Alcotest.(check (list (pair string int))) "invocations" [ ("nine", 1) ]
    (Syscall.invocations t);
  Alcotest.check_raises "double register"
    (Invalid_argument "Syscall.register: number 9 already bound") (fun () ->
      Syscall.register t ~number:9 ~name:"again" (fun _ -> 0))

let test_errno () =
  checki "einval code" 22 (Syscall.errno_code Syscall.EINVAL);
  checkb "roundtrip" true
    (List.for_all
       (fun e -> Syscall.errno_of_code (Syscall.errno_code e) = Some e)
       [ Syscall.ENOSYS; EINVAL; EBUSY; ENOMEM; ENOSPC; EFAULT; EIO ]);
  checkb "unknown code" true (Syscall.errno_of_code 9999 = None);
  checki "err is negative" (-22) (Syscall.err Syscall.EINVAL)

(* {1 Kernel} *)

let test_kernel_charge () =
  let engine, k = fresh_kernel () in
  Kernel.charge k Accounting.Sw_dp ~cycles:133_000;
  Alcotest.(check (float 0.001)) "time advanced ~1ms" 1.0
    (Simtime.to_ms (Engine.now engine));
  checki "ledger matches clock" (Simtime.to_ps (Engine.now engine))
    (Simtime.to_ps (Accounting.total (Kernel.accounting k)))

let test_kernel_charge_runs_events () =
  let engine, k = fresh_kernel () in
  let fired = ref false in
  Engine.schedule_after engine (Simtime.of_us 1) (fun () -> fired := true);
  Kernel.charge k Accounting.Sw_os ~cycles:1_000_000;
  checkb "hardware event inside the span ran" true !fired

let test_kernel_syscall_path () =
  let _, k = fresh_kernel () in
  Syscall.register (Kernel.syscalls k) ~number:77 ~name:"t" (fun _ -> 42);
  checki "result" 42 (Kernel.syscall k ~number:77 [||]);
  checkb "entry/exit charged to Sw_os" true
    (Simtime.to_ps (Accounting.get (Kernel.accounting k) Accounting.Sw_os) > 0);
  checki "stat" 1 (Rvi_sim.Stats.get (Kernel.stats k) "syscalls")

let test_kernel_service_interrupts () =
  let _, k = fresh_kernel () in
  let hits = ref 0 in
  Irq.register (Kernel.irq k) ~line:2 ~name:"x" (fun () -> incr hits);
  Irq.raise_line (Kernel.irq k) ~line:2;
  checki "serviced" 1 (Kernel.service_interrupts k);
  checki "handler ran" 1 !hits;
  checkb "cost charged to Sw_imu" true
    (Simtime.to_ps (Accounting.get (Kernel.accounting k) Accounting.Sw_imu) > 0);
  checki "nothing left" 0 (Kernel.service_interrupts k)

(* {1 Uspace} *)

let test_uspace () =
  let _, k = fresh_kernel () in
  let buf = Uspace.of_bytes k (Bytes.of_string "abcdef") in
  Alcotest.(check string) "roundtrip" "abcdef" (Bytes.to_string (Uspace.read k buf));
  let s = Uspace.sub buf ~pos:2 ~len:3 in
  Alcotest.(check string) "sub view" "cde" (Bytes.to_string (Uspace.read k s));
  Uspace.write k s (Bytes.of_string "XYZ");
  Alcotest.(check string) "write through view" "abXYZf"
    (Bytes.to_string (Uspace.read k buf));
  Alcotest.check_raises "bad view"
    (Invalid_argument "Uspace.view: range outside SDRAM") (fun () ->
      ignore (Uspace.view k ~addr:0 ~size:(2 * 1024 * 1024)));
  Alcotest.check_raises "bad sub"
    (Invalid_argument "Uspace.sub: slice out of bounds") (fun () ->
      ignore (Uspace.sub buf ~pos:4 ~len:10))

let suite =
  [
    Alcotest.test_case "cost_model/conversion" `Quick test_cost_model;
    Alcotest.test_case "accounting/ledger" `Quick test_accounting;
    Alcotest.test_case "irq/dispatch" `Quick test_irq_dispatch;
    Alcotest.test_case "irq/errors" `Quick test_irq_errors;
    Alcotest.test_case "proc/transitions" `Quick test_proc_transitions;
    Alcotest.test_case "proc/illegal" `Quick test_proc_illegal;
    Alcotest.test_case "sched/round-robin" `Quick test_sched_round_robin;
    Alcotest.test_case "sched/sleep-wake" `Quick test_sched_sleep_wake;
    Alcotest.test_case "sched/exit" `Quick test_sched_exit;
    Alcotest.test_case "sched/idle-protected" `Quick test_sched_idle_protections;
    Alcotest.test_case "syscall/dispatch" `Quick test_syscall_dispatch;
    Alcotest.test_case "syscall/errno" `Quick test_errno;
    Alcotest.test_case "kernel/charge" `Quick test_kernel_charge;
    Alcotest.test_case "kernel/charge-runs-events" `Quick test_kernel_charge_runs_events;
    Alcotest.test_case "kernel/syscall-path" `Quick test_kernel_syscall_path;
    Alcotest.test_case "kernel/service-interrupts" `Quick test_kernel_service_interrupts;
    Alcotest.test_case "uspace/views" `Quick test_uspace;
  ]
