(* Unit and property tests for the memory subsystem (rvi_mem). *)

module Page = Rvi_mem.Page
module Ram = Rvi_mem.Ram
module Dpram = Rvi_mem.Dpram
module Sdram = Rvi_mem.Sdram
module Ahb = Rvi_mem.Ahb

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* {1 Page} *)

let epxa1_geom = Page.geometry ~page_size:2048 ~n_pages:8

let test_page_geometry () =
  checki "total" (16 * 1024) (Page.total_bytes epxa1_geom);
  checki "vpn" 3 (Page.vpn epxa1_geom 7000);
  checki "offset" (7000 - (3 * 2048)) (Page.offset epxa1_geom 7000);
  checki "base" 4096 (Page.base epxa1_geom 2);
  checki "page_count exact" 2 (Page.page_count epxa1_geom ~len:4096);
  checki "page_count partial" 3 (Page.page_count epxa1_geom ~len:4097);
  checki "page_count zero" 0 (Page.page_count epxa1_geom ~len:0)

let test_page_invalid () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Page.geometry: page_size must be a power of two >= 16")
    (fun () -> ignore (Page.geometry ~page_size:1000 ~n_pages:4));
  Alcotest.check_raises "zero pages"
    (Invalid_argument "Page.geometry: n_pages >= 1 required") (fun () ->
      ignore (Page.geometry ~page_size:1024 ~n_pages:0))

let prop_page_roundtrip =
  QCheck.Test.make ~name:"page vpn*size+offset reconstructs the address"
    ~count:300
    QCheck.(int_bound (16 * 1024 - 1))
    (fun addr ->
      Page.base epxa1_geom (Page.vpn epxa1_geom addr) + Page.offset epxa1_geom addr
      = addr)

(* {1 Ram} *)

let test_ram_rw () =
  let r = Ram.create ~size:64 in
  Ram.write8 r 0 0xAB;
  checki "read8" 0xAB (Ram.read8 r 0);
  Ram.write16 r 10 0xBEEF;
  checki "read16 LE" 0xBEEF (Ram.read16 r 10);
  checki "read16 low byte" 0xEF (Ram.read8 r 10);
  Ram.write32 r 20 0x01020304;
  checki "read32" 0x01020304 (Ram.read32 r 20);
  checki "read32 byte order" 0x04 (Ram.read8 r 20);
  Ram.write r ~width:16 30 0x1234;
  checki "generic read" 0x1234 (Ram.read r ~width:16 30)

let test_ram_bounds () =
  let r = Ram.create ~size:8 in
  Alcotest.check_raises "read past end"
    (Invalid_argument "Ram.read32: address 0x6 (+4) out of [0, 0x8)") (fun () ->
      ignore (Ram.read32 r 6));
  match Ram.read8 r (-1) with
  | _ -> Alcotest.fail "negative address accepted"
  | exception Invalid_argument _ -> ()

let test_ram_blit () =
  let r = Ram.create ~size:32 in
  Ram.blit_from_bytes (Bytes.of_string "hello") ~src:0 r ~dst:4 ~len:5;
  let out = Bytes.make 5 ' ' in
  Ram.blit_to_bytes r ~src:4 out ~dst:0 ~len:5;
  Alcotest.(check string) "roundtrip" "hello" (Bytes.to_string out);
  let r2 = Ram.create ~size:32 in
  Ram.blit r ~src:4 r2 ~dst:0 ~len:5;
  Alcotest.(check string) "ram-to-ram" "hello"
    (Bytes.to_string (Ram.dump r2 ~pos:0 ~len:5));
  Ram.fill r ~pos:4 ~len:5 'x';
  Alcotest.(check string) "fill" "xxxxx" (Bytes.to_string (Ram.dump r ~pos:4 ~len:5))

let prop_ram_w16_r8 =
  QCheck.Test.make ~name:"ram 16-bit write = two little-endian bytes" ~count:200
    QCheck.(pair (int_bound 0xFFFF) (int_bound 29))
    (fun (v, addr) ->
      let r = Ram.create ~size:32 in
      Ram.write16 r addr v;
      Ram.read8 r addr = v land 0xFF && Ram.read8 r (addr + 1) = (v lsr 8) land 0xFF)

(* The single-load accessors must keep exact little-endian byte-wise
   semantics at every offset, aligned or not — the IMU issues 16/32-bit
   coprocessor accesses at arbitrary object offsets and the page-blit
   paths assume the two views never diverge. *)
let prop_ram_width_roundtrip =
  QCheck.Test.make
    ~name:"ram 8/16/32 accessors round-trip and match byte-wise reads at any \
           offset"
    ~count:300
    QCheck.(triple (int_bound 2) (int_bound 59) (int_bound 0x3FFFFFFF))
    (fun (wsel, addr, v) ->
      let width = match wsel with 0 -> 8 | 1 -> 16 | _ -> 32 in
      let mask = (1 lsl width) - 1 in
      let v = v land mask in
      let r = Ram.create ~size:64 in
      (* surround with a sentinel pattern to catch stray writes *)
      Ram.fill r ~pos:0 ~len:64 '\x5A';
      Ram.write r ~width addr v;
      let bytewise =
        let n = width / 8 in
        let acc = ref 0 in
        for i = n - 1 downto 0 do
          acc := (!acc lsl 8) lor Ram.read8 r (addr + i)
        done;
        !acc
      in
      Ram.read r ~width addr = v
      && bytewise = v
      && (* every byte outside the write is untouched *)
      (let intact = ref true in
       for i = 0 to 63 do
         if i < addr || i >= addr + (width / 8) then
           if Ram.read8 r i <> 0x5A then intact := false
       done;
       !intact))

(* {1 Dpram} *)

let test_dpram_pages () =
  let d = Dpram.create epxa1_geom in
  checki "pages" 8 (Dpram.n_pages d);
  checki "page size" 2048 (Dpram.page_size d);
  checki "size" (16 * 1024) (Dpram.size d);
  let data = Bytes.make 100 'z' in
  Dpram.load_page d ~page:2 data ~src:0 ~len:100;
  checki "loaded" (Char.code 'z') (Dpram.read d ~width:8 (2 * 2048));
  checki "zero filled tail" 0 (Dpram.read d ~width:8 ((2 * 2048) + 100));
  let out = Bytes.make 100 ' ' in
  Dpram.store_page d ~page:2 out ~dst:0 ~len:100;
  Alcotest.(check string) "store" (Bytes.to_string data) (Bytes.to_string out);
  Dpram.clear_page d ~page:2;
  checki "cleared" 0 (Dpram.read d ~width:8 (2 * 2048))

let test_dpram_ports_and_stats () =
  let d = Dpram.create epxa1_geom in
  Dpram.write d ~width:32 0 0xCAFE;
  checki "pld sees" 0xCAFE (Dpram.read d ~width:32 0);
  Dpram.cpu_write32 d 4 0xBEEF;
  checki "cpu write visible to pld" 0xBEEF (Dpram.read d ~width:32 4);
  checki "cpu read" 0xCAFE (Dpram.cpu_read32 d 0);
  let s = Dpram.stats d in
  checki "pld_reads" 2 (Rvi_sim.Stats.get s "pld_reads");
  checki "pld_writes" 1 (Rvi_sim.Stats.get s "pld_writes");
  checki "cpu_words" 2 (Rvi_sim.Stats.get s "cpu_words")

let test_dpram_parity_page_indexing () =
  (* Corruption is indexed per page: a check on page B must not report —
     or pay for — flips latent on page A. The ["parity_scan_steps"]
     counter pins the cost model at exactly one probe per check. *)
  let d = Dpram.create epxa1_geom in
  let spec = [ { Rvi_inject.Spec.kind = Rvi_inject.Fault.Dpram_flip; rate = 1.0 } ] in
  let inj = Rvi_inject.Injector.create ~seed:7 ~spec in
  Dpram.set_injector d (Some inj);
  (* rate 1.0: every PLD write flips one bit of the cell it just wrote —
     pile several latent flips onto page 2 and nothing anywhere else *)
  let base_a = Page.base epxa1_geom 2 in
  Dpram.write d ~width:32 base_a 0xdeadbeef;
  Dpram.write d ~width:32 (base_a + 64) 0x12345678;
  Dpram.write d ~width:32 (base_a + 128) 0x0f0f0f0f;
  Dpram.write d ~width:32 (base_a + 192) 0x55aa55aa;
  Dpram.set_injector d None;
  let s = Dpram.stats d in
  checki "flips landed" 4 (Rvi_sim.Stats.get s "bit_flips");
  let steps () = Rvi_sim.Stats.get s "parity_scan_steps" in
  let checks () = Rvi_sim.Stats.get s "parity_page_checks" in
  let before = steps () in
  checkb "page A dirty" true (Dpram.parity_error d ~page:2);
  checki "one probe despite 4 latent flips" (before + 1) (steps ());
  let before = steps () in
  checkb "page B clean" false (Dpram.parity_error d ~page:1);
  checkb "page C clean" false (Dpram.parity_error d ~page:3);
  checki "clean checks cost one probe each" (before + 2) (steps ());
  checki "every call counted" 3 (checks ());
  (* refreshing page A's parity (page load) clears its index entry *)
  Dpram.load_page d ~page:2 (Bytes.make 16 'x') ~src:0 ~len:16;
  checkb "page A clean after reload" false (Dpram.parity_error d ~page:2);
  checkb "page B still clean" false (Dpram.parity_error d ~page:1)

let test_dpram_bad_page () =
  let d = Dpram.create epxa1_geom in
  Alcotest.check_raises "page out of range"
    (Invalid_argument "Dpram.load_page: page 8 out of [0, 8)") (fun () ->
      Dpram.load_page d ~page:8 (Bytes.create 1) ~src:0 ~len:1);
  Alcotest.check_raises "oversize load"
    (Invalid_argument "Dpram.load_page: bad length") (fun () ->
      Dpram.load_page d ~page:0 (Bytes.create 4096) ~src:0 ~len:4096)

(* {1 Sdram} *)

let test_sdram_alloc () =
  let s = Sdram.create ~size:1024 in
  let a = Sdram.alloc s 10 in
  let b = Sdram.alloc s 10 in
  checkb "distinct" true (a <> b);
  checki "aligned" 0 (b mod 4);
  checkb "used grows" true (Sdram.used s >= 20);
  let c = Sdram.alloc s ~align:64 1 in
  checki "custom align" 0 (c mod 64);
  Sdram.release_all s;
  checki "released" 0 (Sdram.used s);
  Alcotest.check_raises "exhaustion" Out_of_memory (fun () ->
      ignore (Sdram.alloc s 2048))

let test_sdram_rw () =
  let s = Sdram.create ~size:256 in
  Sdram.write_bytes s 16 (Bytes.of_string "data!");
  Alcotest.(check string) "bytes roundtrip" "data!"
    (Bytes.to_string (Sdram.read_bytes s 16 ~len:5));
  Sdram.write32 s 32 0xFEED;
  checki "word" 0xFEED (Sdram.read32 s 32);
  Sdram.write16 s 40 0x1234;
  checki "half" 0x1234 (Sdram.read16 s 40);
  Sdram.write8 s 44 0x56;
  checki "byte" 0x56 (Sdram.read8 s 44)

(* {1 Ahb} *)

let test_ahb_costs () =
  let a = Ahb.default in
  checki "zero bytes free" 0 (Ahb.copy_cycles a ~bytes:0);
  checki "words round up" 2 (Ahb.words a ~bytes:5);
  checki "one page"
    (a.Ahb.setup_cycles + (512 * a.Ahb.cycles_per_word))
    (Ahb.copy_cycles a ~bytes:2048);
  let custom = Ahb.make ~word_bytes:8 ~setup_cycles:10 ~cycles_per_word:2 in
  checki "custom" (10 + (2 * 2)) (Ahb.copy_cycles custom ~bytes:16)

let prop_ahb_monotone =
  QCheck.Test.make ~name:"ahb copy cost is monotone in size" ~count:200
    QCheck.(pair (int_bound 10_000) (int_bound 10_000))
    (fun (x, y) ->
      let lo = min x y and hi = max x y in
      Ahb.copy_cycles Ahb.default ~bytes:lo <= Ahb.copy_cycles Ahb.default ~bytes:hi)

let suite =
  [
    Alcotest.test_case "page/geometry" `Quick test_page_geometry;
    Alcotest.test_case "page/invalid" `Quick test_page_invalid;
    QCheck_alcotest.to_alcotest prop_page_roundtrip;
    Alcotest.test_case "ram/rw" `Quick test_ram_rw;
    Alcotest.test_case "ram/bounds" `Quick test_ram_bounds;
    Alcotest.test_case "ram/blit" `Quick test_ram_blit;
    QCheck_alcotest.to_alcotest prop_ram_w16_r8;
    QCheck_alcotest.to_alcotest prop_ram_width_roundtrip;
    Alcotest.test_case "dpram/pages" `Quick test_dpram_pages;
    Alcotest.test_case "dpram/ports-stats" `Quick test_dpram_ports_and_stats;
    Alcotest.test_case "dpram/parity-page-indexing" `Quick
      test_dpram_parity_page_indexing;
    Alcotest.test_case "dpram/bad-page" `Quick test_dpram_bad_page;
    Alcotest.test_case "sdram/alloc" `Quick test_sdram_alloc;
    Alcotest.test_case "sdram/rw" `Quick test_sdram_rw;
    Alcotest.test_case "ahb/costs" `Quick test_ahb_costs;
    QCheck_alcotest.to_alcotest prop_ahb_monotone;
  ]
