(** Service-level reporting: per-tenant and aggregate latency
    percentiles, Jain's fairness index, makespan and the sanity flags
    the chaos invariants key on. *)

type tenant_summary = {
  ts_id : int;
  ts_weight : int;
  ts_completed : int;
  ts_dropped : int;
  ts_starved : bool;
  ts_mean_us : float;
  ts_p50_us : float;
  ts_p99_us : float;
}

type report = {
  r_tenants : int;
  r_submitted : int;
  r_completed : int;
  r_dropped : int;
  r_degraded : int;
  r_recovered : int;
  r_makespan_ms : float;
  r_p50_us : float;
  r_p95_us : float;
  r_p99_us : float;
  r_jain : float;  (** over per-tenant 1/mean-latency; 1.0 = fair *)
  r_reconfigurations : int;
  r_preemptions : int;
  r_resumes : int;
  r_starved : int list;
  r_inconsistencies : int;
  r_sane : bool;
      (** reported percentiles are ordered (p99 >= p50, aggregate and
          per tenant) — the [slo-insane] chaos invariant *)
  r_per_tenant : tenant_summary list;
}

val jain : float list -> float
(** Jain's fairness index [(sum x)^2 / (n * sum x^2)] over the positive
    entries; 1.0 when empty. *)

val build : tenants:Tenant.t array -> outcome:Service.outcome -> report

val print : Format.formatter -> label:string -> report -> unit
