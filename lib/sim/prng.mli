(** Deterministic pseudo-random number generator (splitmix64).

    The simulator must be reproducible run to run, so every stochastic
    choice (random replacement policy, workload generation) draws from an
    explicitly seeded generator rather than the global [Random] state. *)

type t

val create : seed:int -> t

val next : t -> int
(** A uniformly distributed non-negative 62-bit integer. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument] if
    [bound <= 0]. *)

val byte : t -> int
(** Uniform in [0, 255]. *)

val bool : t -> bool

val fill_bytes : t -> Bytes.t -> unit
(** Overwrites the whole buffer with pseudo-random bytes. *)

val split : t -> t
(** A statistically independent generator derived from [t]'s stream. *)

val derive : seed:int -> index:int -> t
(** [derive ~seed ~index] is the [index]-th member of a family of
    statistically independent generators keyed by [seed]: a pure
    function of [(seed, index)], so sharded workloads can hand run
    [i] its own stream without threading a master generator through
    the shards. Adjacent indices produce decorrelated streams. Raises
    [Invalid_argument] on a negative index. *)
