(** The memory interface a coprocessor is written against.

    The paper's central portability claim is that the same coprocessor HDL
    runs unchanged behind the virtual interface (through the IMU) or — in
    the "typical coprocessor" baseline — against hardwired physical
    addresses. We capture that by writing every coprocessor as a functor
    over this signature; {!Vport} implements it with the Figure 4 signal
    protocol, {!Dport} with raw single-cycle dual-port accesses.

    Discipline (enforced by assertions):
    - call {!val-sample} first in every compute phase;
    - {!issue} only when [not (busy t)];
    - after {!ready}, read data the same cycle. *)

module type S = sig
  type t

  val sample : t -> unit
  (** Latch the port inputs for this cycle. Must be the first port
      operation of a compute phase. *)

  val start_seen : t -> bool
  (** True on the cycle the start pulse arrives. *)

  val issue :
    t ->
    region:int ->
    addr:int ->
    wr:bool ->
    width:Rvi_core.Cp_port.width ->
    data:int ->
    unit
  (** Posts an access. [region] is the object identifier; region 255 reads
      the scalar parameters. The request leaves at the next commit. *)

  val busy : t -> bool
  (** An access is outstanding (issued and not yet completed). *)

  val ready : t -> bool
  (** The outstanding access completed this cycle; for reads {!data} is
      valid now. *)

  val data : t -> int

  val finish : t -> unit
  (** Assert completion (held until the next start). *)

  val commit : t -> unit
  (** Drive the output signals; call from the component's commit phase. *)

  val reset : t -> unit

  val quiescent : t -> bool
  (** Whether one [sample]/[commit] tick of the owning coprocessor would
      leave the port in exactly this state (no latched start or response
      to consume, no request to move) — the port half of the
      {!Rvi_sim.Clock.component} idle contract. Implementations must be
      exact: [true] promises the tick is a no-op as long as no other
      component runs. *)
end

val read_param : issue:(region:int -> addr:int -> unit) -> index:int -> unit
(** Helper posting the read of parameter word [index] (32-bit, little-
    endian layout in the parameter page). *)
