type t = { width : int; value : int }

let check_width width =
  if width < 1 || width > 62 then invalid_arg "Bits: width out of [1, 62]"

let mask width = (1 lsl width) - 1

let make ~width v =
  check_width width;
  if v < 0 then invalid_arg "Bits.make: negative value";
  { width; value = v land mask width }

let width t = t.width
let to_int t = t.value
let zero ~width = make ~width 0

let ones ~width =
  check_width width;
  { width; value = mask width }

let max_int ~width =
  check_width width;
  mask width

let same_width a b op =
  if a.width <> b.width then
    invalid_arg (Printf.sprintf "Bits.%s: width mismatch (%d vs %d)" op a.width b.width)

let add a b =
  same_width a b "add";
  { a with value = (a.value + b.value) land mask a.width }

let sub a b =
  same_width a b "sub";
  { a with value = (a.value - b.value) land mask a.width }

let succ a = { a with value = (a.value + 1) land mask a.width }

let logand a b = same_width a b "logand"; { a with value = a.value land b.value }
let logor a b = same_width a b "logor"; { a with value = a.value lor b.value }
let logxor a b = same_width a b "logxor"; { a with value = a.value lxor b.value }
let lognot a = { a with value = lnot a.value land mask a.width }

let shift_left a n =
  if n < 0 then invalid_arg "Bits.shift_left: negative shift";
  let v = if n >= a.width then 0 else (a.value lsl n) land mask a.width in
  { a with value = v }

let shift_right a n =
  if n < 0 then invalid_arg "Bits.shift_right: negative shift";
  let v = if n >= a.width then 0 else a.value lsr n in
  { a with value = v }

let bit t i =
  if i < 0 || i >= t.width then invalid_arg "Bits.bit: index out of range";
  (t.value lsr i) land 1 = 1

let set_bit t i b =
  if i < 0 || i >= t.width then invalid_arg "Bits.set_bit: index out of range";
  let v = if b then t.value lor (1 lsl i) else t.value land lnot (1 lsl i) in
  { t with value = v land mask t.width }

let slice ~hi ~lo t =
  if lo < 0 || hi >= t.width || hi < lo then
    invalid_arg "Bits.slice: bad range";
  make ~width:(hi - lo + 1) ((t.value lsr lo) land mask (hi - lo + 1))

let concat hi lo =
  let width = hi.width + lo.width in
  check_width width;
  { width; value = (hi.value lsl lo.width) lor lo.value }

let equal a b = a.width = b.width && a.value = b.value

let compare a b =
  let c = Int.compare a.width b.width in
  if c <> 0 then c else Int.compare a.value b.value

let pp ppf t =
  Format.fprintf ppf "%d'h%0*x" t.width ((t.width + 3) / 4) t.value

let pp_bin ppf t =
  Format.fprintf ppf "%d'b" t.width;
  for i = t.width - 1 downto 0 do
    Format.pp_print_char ppf (if bit t i then '1' else '0')
  done
