module Simtime = Rvi_sim.Simtime
module Engine = Rvi_sim.Engine
module Stats = Rvi_sim.Stats
module Kernel = Rvi_os.Kernel
module Accounting = Rvi_os.Accounting
module Cost_model = Rvi_os.Cost_model
module Trace = Rvi_obs.Trace

let src = Logs.Src.create "rvi.vim" ~doc:"Virtual Interface Manager"

module Log = (val Logs.src_log src)

type transfer_mode = Single | Double

type copy_engine = Cpu | Dma_engine of Rvi_mem.Dma.t

type recovery = {
  max_retries : int;
  backoff : Simtime.t;
  poll : Simtime.t;
}

let default_recovery =
  { max_retries = 3; backoff = Simtime.of_us 10; poll = Simtime.of_us 200 }

(* {1 The recovery state machine, reified}

   Every recovery decision the VIM (and the runner above it) takes is one
   row of this table: given the class of the detected fault and how many
   times recovery has already been attempted, what happens next. The
   functions below are the single source of truth — [charge_copy_with_retry]
   and the SVA walk-retry bounding dispatch through them, and the property
   tests enumerate them — so the machine provably never wedges: [Retry] is
   only ever answered while [attempt <= max_retries], and every class maps
   to a terminal action ([Abort] or [Degrade]) beyond that. *)

type fault_class =
  | Copy_error  (* AHB error / DMA abort on a page transfer *)
  | Walk_error  (* SVA: the page-table walk aborted on a bus error *)
  | Hang  (* no progress: the coprocessor or the walker wedged *)
  | Lost_irq  (* a cause latched in SR with no interrupt edge *)
  | Bad_output  (* clean exit, wrong result (caught by verification) *)

let fault_class_name = function
  | Copy_error -> "copy-error"
  | Walk_error -> "walk-error"
  | Hang -> "hang"
  | Lost_irq -> "lost-irq"
  | Bad_output -> "bad-output"

let all_fault_classes = [ Copy_error; Walk_error; Hang; Lost_irq; Bad_output ]

type action =
  | Retry of { backoff : Simtime.t }
      (* re-issue the failed operation after [backoff] *)
  | Poll  (* read SR at the poll interval until the cause surfaces *)
  | Abort  (* abort_cleanup; the error propagates to the caller *)
  | Degrade  (* hand the computation to the software fallback *)

let action_name = function
  | Retry _ -> "retry"
  | Poll -> "poll"
  | Abort -> "abort"
  | Degrade -> "degrade"

(* The transition table. [attempt] is 1-based: the decision taken after
   the [attempt]-th failure of the same operation. *)
let decide r ~cls ~attempt =
  if attempt < 1 then invalid_arg "Vim.decide: attempt must be >= 1";
  match cls with
  | Lost_irq -> Poll
  | Hang -> Abort
  | Copy_error ->
    if attempt <= r.max_retries then
      (* exponential backoff: base * 2^(attempt-1) *)
      Retry { backoff = Simtime.mul r.backoff (1 lsl min 30 (attempt - 1)) }
    else Abort
  | Walk_error ->
    (* resume re-walks immediately: the walker retry has no software
       backoff, the fault service itself is the delay *)
    if attempt <= r.max_retries then Retry { backoff = Simtime.zero }
    else Abort
  | Bad_output ->
    (* whole-execution granularity: the runner re-executes within its own
       budget (it instantiates [r] with that budget), then falls back *)
    if attempt <= r.max_retries then Retry { backoff = Simtime.zero }
    else Degrade

type config = {
  policy : Policy.t;
  transfer : transfer_mode;
  prefetch : Prefetch.t;
  overlap_prefetch : bool;
  copy_engine : copy_engine;
  eager_mapping : bool;
  watchdog : Simtime.t;
  injector : Rvi_inject.Injector.t option;
  recovery : recovery;
}

let default_config () =
  {
    policy = Policy.fifo ();
    transfer = Double;
    prefetch = Prefetch.off;
    overlap_prefetch = false;
    copy_engine = Cpu;
    eager_mapping = true;
    watchdog = Simtime.of_ms 10_000;
    injector = None;
    recovery = default_recovery;
  }

type error =
  | Unmapped_object of int
  | Object_overflow of { obj_id : int; vpn : int }
  | No_frames
  | Too_many_params of { given : int; capacity : int }
  | Hardware_stall
  | Nothing_loaded
  | Bus_error
  | Dma_failed
  | Parity_error of { frame : int }
  | Sva_fault of { vpn : int }
  | Walk_failed of { vpn : int }

let error_to_string = function
  | Unmapped_object id -> Printf.sprintf "access to unmapped object %d" id
  | Object_overflow { obj_id; vpn } ->
    Printf.sprintf "object %d accessed beyond its end (page %d)" obj_id vpn
  | No_frames -> "dual-port memory too small (need parameter page + 1 frame)"
  | Too_many_params { given; capacity } ->
    Printf.sprintf "%d scalar parameters exceed the parameter page (%d words)"
      given capacity
  | Hardware_stall -> "coprocessor made no progress before the watchdog"
  | Nothing_loaded -> "no bit-stream loaded"
  | Bus_error -> "AHB error response persisted through every copy retry"
  | Dma_failed -> "DMA transfer failed through every retry"
  | Parity_error { frame } ->
    Printf.sprintf "dual-port RAM parity error in frame %d" frame
  | Sva_fault { vpn } ->
    Printf.sprintf
      "walker fault on virtual page %d outside the process address space" vpn
  | Walk_failed { vpn } ->
    Printf.sprintf
      "page-table walk of virtual page %d kept failing through every retry"
      vpn

type severity = Transient | Fatal

(* Transient errors are environmental: a clean re-execution (or a software
   fallback) can still deliver the result. Fatal ones are caller or
   configuration bugs where retrying reproduces the failure. *)
let classify = function
  | Hardware_stall | Bus_error | Dma_failed | Parity_error _ | Walk_failed _ ->
    Transient
  | Unmapped_object _ | Object_overflow _ | No_frames | Too_many_params _
  | Nothing_loaded | Sva_fault _ ->
    Fatal

type t = {
  kernel : Kernel.t;
  dpram : Rvi_mem.Dpram.t;
  imu : Imu.t;
  ahb : Rvi_mem.Ahb.t;
  clocks : Rvi_sim.Clock.t list;
  mutable cfg : config;
      (* swapped by [reset] when a pooled platform is re-armed for the next
         run (fresh policy state, injector, recovery parameters) *)
  geom : Rvi_mem.Page.geometry;
  frames : Frame_table.t;
  objects : (int, Mapped_object.t) Hashtbl.t;
  written_back : (int * int, unit) Hashtbl.t;
      (* (obj, vpn) pairs evicted dirty: must be reloaded on refault even
         for output-only objects, or earlier results would be lost *)
  frame_dirty : (int, unit) Hashtbl.t;
      (* dirtiness folded out of evicted TLB entries (TLB smaller than the
         frame pool) *)
  mutable page_table : Rvi_os.Page_table.t option;
      (* SVA: the executing process's page table, bound for the duration
         of one FPGA_EXECUTE (the same binding the IMU walker holds) *)
  mutable caller : int option; (* pid sleeping in FPGA_EXECUTE *)
  (* SVA walk-retry bounding: consecutive refill-only faults on the same
     virtual page mean the hardware walk keeps aborting (a PTE exists, yet
     the walker comes back empty-handed); the streak is bounded by the
     recovery budget through {!decide}. *)
  mutable walk_retry_vpn : int;
  mutable walk_retry_count : int;
  mutable finished : bool;
  mutable error : error option;
  mutable progress_events : int;
      (* serviced real causes (fin or fault with a latched cause) — the
         watchdog re-arms only when THIS interface made progress, so
         neither a glitching controller nor another tenant's interrupt
         activity can hold the watchdog off a hung coprocessor *)
  irq_line : int;
  mutable on_abort : unit -> unit;
      (* resets the coprocessor side of the interface (port, synchroniser,
         coprocessor FSM) — wired by the platform, since the VIM only
         knows the IMU *)
  stats : Stats.t;
}

(* Event-trace emission: no-ops unless a trace is attached to the kernel.
   [emit] records an instant at the current time; [span] records an
   interval from [t0] to now (spans are emitted at completion). *)
let emit t ?dur kind =
  match Kernel.trace t.kernel with
  | Some tr -> Trace.emit tr ~at:(Kernel.now t.kernel) ?dur kind
  | None -> ()

let span t ~t0 kind =
  match Kernel.trace t.kernel with
  | Some tr ->
    Trace.emit tr ~at:t0 ~dur:(Simtime.sub (Kernel.now t.kernel) t0) kind
  | None -> ()

let rec create ?(irq_line = 0) ~kernel ~dpram ~imu ~ahb ~clocks cfg =
  let t =
    {
      kernel;
      dpram;
      imu;
      ahb;
      clocks;
      cfg;
      geom = Rvi_mem.Dpram.geometry dpram;
      frames = Frame_table.create ~frames:(Rvi_mem.Dpram.n_pages dpram);
      objects = Hashtbl.create 8;
      written_back = Hashtbl.create 64;
      frame_dirty = Hashtbl.create 16;
      page_table = None;
      caller = None;
      walk_retry_vpn = -1;
      walk_retry_count = 0;
      finished = false;
      error = None;
      progress_events = 0;
      irq_line;
      on_abort = (fun () -> ());
      stats = Stats.create ();
    }
  in
  Rvi_os.Irq.register (Kernel.irq kernel) ~line:irq_line ~name:"imu"
    (fun () -> handle_irq t);
  t

and handle_irq t =
  let cost = Kernel.cost t.kernel in
  (* Read SR/AR over the bus and decode the cause. *)
  let t0 = Kernel.now t.kernel in
  Kernel.charge t.kernel Accounting.Sw_imu ~cycles:cost.Cost_model.fault_decode;
  span t ~t0 Trace.Decode;
  let sr = Imu.read_sr t.imu in
  if Imu_regs.test sr Imu_regs.sr_fin then handle_fin t
  else if Imu_regs.test sr Imu_regs.sr_fault then handle_fault t ~t0
  else
    (* Spurious interrupt: counted, otherwise ignored. *)
    Stats.incr t.stats "spurious_irqs"

(* One page transfer, with the recovery machine wrapped around it: the bus
   (or the DMA channel) may answer with an error response, in which case
   the kernel backs off exponentially and re-issues the transfer, up to
   [recovery.max_retries] times. Exhaustion turns into a {!Bus_error} /
   {!Dma_failed} abort. The simulator performs the data movement up front —
   a retried transfer ends with the same bytes in place, so only the cost
   and the error bookkeeping are replayed. *)
and charge_copy_with_retry t ~what bytes =
  charge_copy t bytes;
  match t.cfg.injector with
  | None -> ()
  | Some inj ->
    let kind =
      match t.cfg.copy_engine with
      | Cpu -> Rvi_inject.Fault.Ahb_error
      | Dma_engine _ -> Rvi_inject.Fault.Dma_error
    in
    let rec go attempt =
      if Rvi_inject.Injector.fire inj kind then begin
        Stats.incr t.stats "copy_errors";
        match decide t.cfg.recovery ~cls:Copy_error ~attempt with
        | Retry { backoff } ->
          Stats.incr t.stats "copy_retries";
          emit t (Trace.Retry { what; attempt });
          Kernel.charge_time t.kernel Accounting.Sw_os backoff;
          charge_copy t bytes;
          go (attempt + 1)
        | Poll | Abort | Degrade ->
          Stats.incr t.stats "copy_retries_exhausted";
          if t.error = None then
            t.error <-
              Some
                (match t.cfg.copy_engine with
                | Cpu -> Bus_error
                | Dma_engine _ -> Dma_failed)
      end
      else if attempt > 1 then begin
        Stats.incr t.stats "copies_recovered";
        emit t (Trace.Recover { what; retries = attempt - 1 })
      end
    in
    go 1

and charge_copy t bytes =
  match t.cfg.copy_engine with
  | Cpu ->
    let factor = match t.cfg.transfer with Single -> 1 | Double -> 2 in
    let cycles = factor * Rvi_mem.Ahb.copy_cycles t.ahb ~bytes in
    let t0 = Kernel.now t.kernel in
    Kernel.charge t.kernel Accounting.Sw_dp ~cycles;
    span t ~t0 (Trace.Copy { bytes; dma = false })
  | Dma_engine dma ->
    (* Program the channel, then wait out the burst; a DMA moves the data
       once regardless of the transfer-mode setting. *)
    Kernel.charge t.kernel Accounting.Sw_dp
      ~cycles:(Rvi_mem.Dma.setup_cycles dma);
    let notify ~bytes time = emit t ~dur:time (Trace.Copy { bytes; dma = true }) in
    Kernel.charge_time t.kernel Accounting.Sw_dp
      (Rvi_mem.Dma.transfer ~notify dma ~bytes)

and translation t = (Imu.config t.imu).Imu.translation

(* SVA: the PTE of the page held in [frame], if the frame is held and the
   page table is bound. *)
and sva_pte t ~frame =
  match t.page_table with
  | None -> None
  | Some pt -> (
    match Frame_table.slot t.frames ~frame with
    | Frame_table.Held { vpn; _ } -> Rvi_os.Page_table.find pt ~vpn
    | Frame_table.Free | Frame_table.Param -> None)

(* Dirtiness of the page in [frame]: hardware TLB bit — at either level of
   the SVA hierarchy — plus the sticky PTE bit, plus anything folded back
   when a TLB entry was evicted while the page stayed resident. *)
and frame_is_dirty t ~frame =
  let dirty_in tlb =
    match Tlb.slot_of_ppn tlb ~ppn:frame with
    | Some slot -> (Tlb.get tlb ~slot).Tlb.dirty
    | None -> false
  in
  dirty_in (Imu.tlb t.imu)
  || (match Imu.l2 t.imu with Some l2 -> dirty_in l2 | None -> false)
  || Hashtbl.mem t.frame_dirty frame
  || (match sva_pte t ~frame with
     | Some pte -> pte.Rvi_os.Page_table.dirty
     | None -> false)

(* Write the page held in [frame] back to its user buffer if it is dirty
   and its object accepts writes. Input-only objects are never written
   back — the direction flag is the paper's optimisation hint. *)
and writeback_if_dirty t ~frame ~obj_id ~vpn =
  match Hashtbl.find_opt t.objects obj_id with
  | None -> ()
  | Some obj ->
    if frame_is_dirty t ~frame then begin
      match obj.Mapped_object.dir with
      | Mapped_object.In -> Stats.incr t.stats "dirty_in_dropped"
      | Mapped_object.Out | Mapped_object.Inout ->
        let len = Mapped_object.bytes_on_page obj t.geom ~vpn in
        if len > 0 then begin
          if Rvi_mem.Dpram.parity_error t.dpram ~page:frame then begin
            (* The parity sweep caught a latent bit flip: the frame's data
               cannot be trusted and there is no good copy to retry from,
               so the execution aborts (a clean re-run or the software
               fallback recovers the result). *)
            Stats.incr t.stats "parity_errors";
            if t.error = None then t.error <- Some (Parity_error { frame })
          end
          else begin
            (* Page-granular blit: the copy engine moves the page straight
               from the dual-port array into the user buffer, no bounce
               buffer. *)
            let sdram = Kernel.sdram t.kernel in
            let dst =
              obj.Mapped_object.buf.Rvi_os.Uspace.addr
              + Mapped_object.user_offset obj t.geom ~vpn
            in
            Rvi_mem.Dpram.store_page_to_ram t.dpram ~page:frame
              (Rvi_mem.Sdram.raw sdram) ~dst_pos:dst ~len;
            charge_copy_with_retry t ~what:"writeback" len;
            Hashtbl.replace t.written_back (obj_id, vpn) ();
            emit t (Trace.Page_writeback { obj_id; vpn; frame; bytes = len });
            Stats.incr t.stats "writebacks"
          end
        end
    end

(* Drop the TLB entry translating to [frame] — from both levels of the SVA
   hierarchy — folding its dirty bit into the software table first. *)
and invalidate_tlb_for_frame t ~frame =
  let drop tlb =
    match Tlb.slot_of_ppn tlb ~ppn:frame with
    | None -> ()
    | Some slot ->
      let cost = Kernel.cost t.kernel in
      if (Tlb.get tlb ~slot).Tlb.dirty then
        Hashtbl.replace t.frame_dirty frame ();
      Tlb.invalidate tlb ~slot;
      Kernel.charge t.kernel Accounting.Sw_imu
        ~cycles:cost.Cost_model.tlb_update;
      emit t (Trace.Tlb_invalidate { ppn = frame })
  in
  drop (Imu.tlb t.imu);
  match Imu.l2 t.imu with Some l2 -> drop l2 | None -> ()

(* SVA write-back: the whole page goes back to its home in the process
   address space ([vpn * page_size] in SDRAM). There are no direction
   hints in SVA — the PTE/TLB dirty bits are the only write-back
   information, which is exactly the trade the ablation measures. *)
and sva_writeback_if_dirty t ~frame ~vpn ~dirty =
  if dirty then begin
    if Rvi_mem.Dpram.parity_error t.dpram ~page:frame then begin
      Stats.incr t.stats "parity_errors";
      if t.error = None then t.error <- Some (Parity_error { frame })
    end
    else begin
      let ps = t.geom.Rvi_mem.Page.page_size in
      let sdram = Kernel.sdram t.kernel in
      Rvi_mem.Dpram.store_page_to_ram t.dpram ~page:frame
        (Rvi_mem.Sdram.raw sdram) ~dst_pos:(vpn * ps) ~len:ps;
      charge_copy_with_retry t ~what:"writeback" ps;
      emit t
        (Trace.Page_writeback { obj_id = Imu.sva_asid; vpn; frame; bytes = ps });
      Stats.incr t.stats "writebacks"
    end
  end

(* SVA eviction: snapshot dirtiness across L1/L2/PTE, drop the page's
   translations from both TLB levels, write the page home if dirty, and
   clear its PTE so the next walk faults to the VIM again. *)
and sva_evict t ~frame =
  (match Frame_table.slot t.frames ~frame with
  | Frame_table.Held { vpn; _ } ->
    let dirty = frame_is_dirty t ~frame in
    invalidate_tlb_for_frame t ~frame;
    Kernel.charge t.kernel Accounting.Sw_imu
      ~cycles:(Kernel.cost t.kernel).Cost_model.fault_decode;
    sva_writeback_if_dirty t ~frame ~vpn ~dirty;
    (match t.page_table with
    | Some pt ->
      Rvi_os.Page_table.unmap pt ~vpn;
      Kernel.charge t.kernel Accounting.Sw_os
        ~cycles:(Kernel.cost t.kernel).Cost_model.tlb_update
    | None -> ());
    emit t
      (Trace.Page_evict
         {
           obj_id = Imu.sva_asid;
           vpn;
           frame;
           policy = Policy.name t.cfg.policy;
           dirty;
         });
    Stats.incr t.stats "evictions"
  | Frame_table.Param -> Stats.incr t.stats "param_releases"
  | Frame_table.Free -> ());
  Hashtbl.remove t.frame_dirty frame;
  Frame_table.release t.frames ~frame;
  let cost = Kernel.cost t.kernel in
  Kernel.charge t.kernel Accounting.Sw_os ~cycles:cost.Cost_model.page_bookkeeping

and evict t ~frame =
  match translation t with
  | Translation_mode.Iommu_sva -> sva_evict t ~frame
  | Translation_mode.Paper_objects ->
    (match Frame_table.slot t.frames ~frame with
    | Frame_table.Held { obj_id; vpn; _ } ->
      let dirty = frame_is_dirty t ~frame in
      (* Unmap, then drain: an access whose CAM hit preceded the
         invalidation may still be in flight inside the IMU; give it one
         full translation window (an SR read's worth of CPU time) to land in
         the old frame before the contents are snapshotted and the frame
         reused. Only then copy out. *)
      invalidate_tlb_for_frame t ~frame;
      Kernel.charge t.kernel Accounting.Sw_imu
        ~cycles:(Kernel.cost t.kernel).Cost_model.fault_decode;
      writeback_if_dirty t ~frame ~obj_id ~vpn;
      emit t
        (Trace.Page_evict
           { obj_id; vpn; frame; policy = Policy.name t.cfg.policy; dirty });
      Stats.incr t.stats "evictions"
    | Frame_table.Param -> Stats.incr t.stats "param_releases"
    | Frame_table.Free -> ());
    Hashtbl.remove t.frame_dirty frame;
    Frame_table.release t.frames ~frame;
    let cost = Kernel.cost t.kernel in
    Kernel.charge t.kernel Accounting.Sw_os
      ~cycles:cost.Cost_model.page_bookkeeping

and candidates ?(exclude = []) t =
  let tlb = Imu.tlb t.imu in
  (* Usage metadata comes from the L1 entry when the page still has one,
     falling back to the shared L2 in SVA mode (an L1-evicted page's
     stamps live on there), then to the load time. *)
  let entry_for frame =
    match Tlb.slot_of_ppn tlb ~ppn:frame with
    | Some slot -> Some (Tlb.get tlb ~slot)
    | None -> (
      match Imu.l2 t.imu with
      | Some l2 -> (
        match Tlb.slot_of_ppn l2 ~ppn:frame with
        | Some slot -> Some (Tlb.get l2 ~slot)
        | None -> None)
      | None -> None)
  in
  Frame_table.resident t.frames
  |> List.filter (fun (frame, _obj, _vpn) ->
         (not (List.mem frame exclude))
         && not (Frame_table.wired t.frames ~frame))
  |> List.map (fun (frame, obj_id, vpn) ->
         let loaded_at =
           match Frame_table.slot t.frames ~frame with
           | Frame_table.Held { loaded_at; _ } -> loaded_at
           | Frame_table.Free | Frame_table.Param -> 0
         in
         match entry_for frame with
         | Some e ->
           {
             Policy.frame;
             page = (obj_id, vpn);
             loaded_at;
             last_access = e.Tlb.last_access;
             referenced = e.Tlb.referenced;
             dirty = frame_is_dirty t ~frame;
           }
         | None ->
           {
             Policy.frame;
             page = (obj_id, vpn);
             loaded_at;
             last_access = loaded_at;
             referenced = false;
             dirty = frame_is_dirty t ~frame;
           })
  |> Array.of_list

(* Find a frame for a new page: a free one, the spent parameter page, or a
   victim chosen by the replacement policy. *)
and obtain_frame ?(exclude = []) ?(clean_only = false) t =
  match Frame_table.free_frame t.frames with
  | Some frame -> Some frame
  | None -> (
    match (Frame_table.param_frame t.frames, Imu.params_done t.imu) with
    | Some frame, true ->
      Imu.set_param_page t.imu None;
      evict t ~frame;
      Some frame
    | _ ->
      let cands = candidates ~exclude t in
      let cands =
        if clean_only then
          Array.of_list
            (List.filter
               (fun c -> not c.Policy.dirty)
               (Array.to_list cands))
        else cands
      in
      if Array.length cands = 0 then None
      else begin
        let tlb = Imu.tlb t.imu in
        let clear_ref frame =
          match Tlb.slot_of_ppn tlb ~ppn:frame with
          | Some slot -> Tlb.clear_referenced tlb ~slot
          | None -> ()
        in
        let victim = Policy.choose t.cfg.policy ~clear_ref cands in
        evict t ~frame:victim;
        Some victim
      end)

(* Place (obj, vpn) into [frame]: move data if needed and refill the TLB.
   [protect] names a page whose TLB entry must survive (the page whose
   fault is being serviced): if the refill cannot avoid its slot, the
   refill is skipped — the page stays resident and a later touch takes a
   cheap refill fault. *)
and install_page ?protect t ~frame ~obj ~vpn =
  let obj_id = obj.Mapped_object.id in
  let len = Mapped_object.bytes_on_page obj t.geom ~vpn in
  let needs_load =
    match obj.Mapped_object.dir with
    | Mapped_object.In | Mapped_object.Inout -> true
    | Mapped_object.Out -> Hashtbl.mem t.written_back (obj_id, vpn)
  in
  if needs_load then begin
    let sdram = Kernel.sdram t.kernel in
    let src =
      obj.Mapped_object.buf.Rvi_os.Uspace.addr
      + Mapped_object.user_offset obj t.geom ~vpn
    in
    Rvi_mem.Dpram.load_page_from_ram t.dpram ~page:frame
      (Rvi_mem.Sdram.raw sdram) ~src_pos:src ~len;
    charge_copy_with_retry t ~what:"page_load" len;
    emit t (Trace.Page_load { obj_id; vpn; frame; bytes = len });
    Stats.incr t.stats "pages_loaded"
  end
  else begin
    (* Output-only page touched for the first time: no transfer, just a
       clean frame (cleared for determinism; a real module would simply
       map it). *)
    Rvi_mem.Dpram.clear_page t.dpram ~page:frame;
    Stats.incr t.stats "pages_cleared"
  end;
  Frame_table.hold t.frames ~frame ~obj_id ~vpn ~loaded_at:(Imu.cycle t.imu);
  Hashtbl.remove t.frame_dirty frame;
  refill_tlb ?protect t ~frame ~obj_id ~vpn

and refill_tlb ?protect t ~frame ~obj_id ~vpn =
  let tlb = Imu.tlb t.imu in
  let cost = Kernel.cost t.kernel in
  let protected_slot s =
    match protect with
    | None -> false
    | Some (pobj, pvpn) ->
      let e = Tlb.get tlb ~slot:s in
      e.Tlb.valid && e.Tlb.obj_id = pobj && e.Tlb.vpn = pvpn
  in
  let slot =
    match Tlb.free_way_slot tlb ~obj_id ~vpn with
    | Some slot -> Some slot
    | None ->
      (* No free slot in the allowed ways (TLB smaller than the frame pool,
         or a conflict in a non-CAM organisation): evict the least recently
         used non-protected entry among them, folding its dirty bit into
         the software table. The page itself stays resident — a later touch
         is a cheap refill fault. *)
      let lru_slot = ref (-1) and lru_stamp = ref max_int in
      List.iter
        (fun s ->
          if not (protected_slot s) then begin
            let e = Tlb.get tlb ~slot:s in
            if e.Tlb.valid && e.Tlb.last_access < !lru_stamp then begin
              lru_slot := s;
              lru_stamp := e.Tlb.last_access
            end
          end)
        (Tlb.way_slots tlb ~obj_id ~vpn);
      if !lru_slot < 0 then None
      else begin
        let slot = !lru_slot in
        let e = Tlb.get tlb ~slot in
        if e.Tlb.valid && e.Tlb.dirty then
          Hashtbl.replace t.frame_dirty e.Tlb.ppn ();
        Tlb.invalidate tlb ~slot;
        Some slot
      end
  in
  match slot with
  | Some slot ->
    let t0 = Kernel.now t.kernel in
    (* Stamp the refill with the current IMU cycle so the entry is the
       most recently used — see Tlb.insert. *)
    Tlb.insert tlb ~slot ~obj_id ~vpn ~ppn:frame ~stamp:(Imu.cycle t.imu);
    Kernel.charge t.kernel Accounting.Sw_imu ~cycles:cost.Cost_model.tlb_update;
    span t ~t0 (Trace.Tlb_update { obj_id; vpn; ppn = frame });
    corrupt_tlb_maybe t ~inserted_slot:slot
  | None ->
    (* Every usable way holds the protected page: leave the new page
       resident without a translation. *)
    Stats.incr t.stats "tlb_refill_skipped"

(* A CAM write can disturb a neighbouring cell. The entries are
   parity-protected, so the corrupt entry is detected and dropped rather
   than translating wrongly: its page stays resident and the next touch
   takes a benign refill fault. The VIM folds the dirty bit into its
   software table first so no write-back is lost. The just-written slot and
   the entry of the fault being serviced are physically distant (different
   CAM rows) and never the victim — which also keeps the IMU's double-fault
   check honest. *)
and corrupt_tlb_maybe t ~inserted_slot =
  match t.cfg.injector with
  | None -> ()
  | Some inj ->
    if Rvi_inject.Injector.fire inj Rvi_inject.Fault.Tlb_corrupt then begin
      let tlb = Imu.tlb t.imu in
      let faulting = Imu.fault t.imu in
      let victims = ref [] in
      for s = Tlb.entries tlb - 1 downto 0 do
        if s <> inserted_slot then begin
          let e = Tlb.get tlb ~slot:s in
          if e.Tlb.valid && Some (e.Tlb.obj_id, e.Tlb.vpn) <> faulting then
            victims := s :: !victims
        end
      done;
      match !victims with
      | [] -> ()
      | vs ->
        let s = List.nth vs (Rvi_inject.Injector.draw inj (List.length vs)) in
        let e = Tlb.get tlb ~slot:s in
        if e.Tlb.dirty then Hashtbl.replace t.frame_dirty e.Tlb.ppn ();
        Tlb.invalidate tlb ~slot:s;
        Stats.incr t.stats "tlb_corruptions"
    end

(* Speculatively pull the next page(s) of a streaming object in during the
   same fault service, saving their future interrupt round-trips. The
   eviction policy applies as for demand faults, except that the pages
   touched by this very service are protected from becoming victims. *)
and try_prefetch t ~obj ~vpn ~protect =
  let protect_page = (obj.Mapped_object.id, vpn) in
  let last_vpn = Mapped_object.page_span obj t.geom - 1 in
  let predictions =
    Prefetch.predict t.cfg.prefetch ~stream:obj.Mapped_object.stream ~vpn
      ~last_vpn
  in
  let obj_id = obj.Mapped_object.id in
  List.fold_left
    (fun protect pvpn ->
      if Frame_table.find t.frames ~obj_id ~vpn:pvpn <> None then protect
      else
        (* Speculation never forces a write-back: evict clean pages only
           (the readahead discipline), or skip. *)
        match obtain_frame ~exclude:protect ~clean_only:true t with
        | Some frame ->
          install_page ~protect:protect_page t ~frame ~obj ~vpn:pvpn;
          emit t (Trace.Prefetch { obj_id; vpn = pvpn; frame });
          Stats.incr t.stats "prefetched";
          frame :: protect
        | None -> protect)
    protect predictions
  |> ignore

(* SVA: wire one process page into [frame] — load the whole page from its
   home in SDRAM (no direction hints exist at this level), hold the frame
   and install the PTE. No TLB refill: the hardware walker re-walks on
   resume and refills both levels itself, as a real IOMMU does. *)
and sva_wire_page t ~frame ~vpn =
  match t.page_table with
  | None -> t.error <- Some (Sva_fault { vpn })
  | Some pt ->
    let ps = t.geom.Rvi_mem.Page.page_size in
    let sdram = Kernel.sdram t.kernel in
    Rvi_mem.Dpram.load_page_from_ram t.dpram ~page:frame
      (Rvi_mem.Sdram.raw sdram) ~src_pos:(vpn * ps) ~len:ps;
    charge_copy_with_retry t ~what:"page_load" ps;
    emit t (Trace.Page_load { obj_id = Imu.sva_asid; vpn; frame; bytes = ps });
    Stats.incr t.stats "pages_loaded";
    Frame_table.hold t.frames ~frame ~obj_id:Imu.sva_asid ~vpn
      ~loaded_at:(Imu.cycle t.imu);
    Hashtbl.remove t.frame_dirty frame;
    Rvi_os.Page_table.map pt ~vpn ~frame;
    Kernel.charge t.kernel Accounting.Sw_os
      ~cycles:(Kernel.cost t.kernel).Cost_model.tlb_update

(* SVA walker fault: the IMU found no PTE (or the window register was
   never programmed, [vpn = -1]). Wire the page by process VA and resume;
   a page whose PTE exists (a corrupted/overwritten TLB entry was
   dropped) needs no wiring — the walker refills on resume. *)
and handle_sva_fault t ~t0 ~obj_id ~vpn =
  let va_pages =
    Rvi_os.Uspace.va_pages t.kernel
      ~page_size:t.geom.Rvi_mem.Page.page_size
  in
  if vpn < 0 || vpn >= va_pages then t.error <- Some (Sva_fault { vpn })
  else begin
    let refill_only = ref false in
    (match t.page_table with
    | Some pt when Rvi_os.Page_table.find pt ~vpn <> None ->
      (* The PTE is present, so the translation only needs the hardware to
         re-walk on resume. A streak of these on the same page means the
         walk itself keeps aborting (injected PTW bus errors): each retry
         is one row of the recovery table, and past the budget the
         execution aborts with a transient {!Walk_failed}. *)
      refill_only := true;
      Stats.incr t.stats "tlb_refill_faults";
      if vpn = t.walk_retry_vpn then begin
        t.walk_retry_count <- t.walk_retry_count + 1;
        Stats.incr t.stats "walk_retries";
        match decide t.cfg.recovery ~cls:Walk_error ~attempt:t.walk_retry_count
        with
        | Retry _ -> emit t (Trace.Retry { what = "walk"; attempt = t.walk_retry_count })
        | Poll | Abort | Degrade ->
          Stats.incr t.stats "walk_retries_exhausted";
          if t.error = None then t.error <- Some (Walk_failed { vpn })
      end
      else begin
        t.walk_retry_vpn <- vpn;
        t.walk_retry_count <- 0
      end
    | _ -> (
      t.walk_retry_vpn <- -1;
      t.walk_retry_count <- 0;
      match obtain_frame t with
      | None -> t.error <- Some No_frames
      | Some frame -> sva_wire_page t ~frame ~vpn));
    if t.error = None then Imu.write_cr t.imu Imu_regs.cr_resume;
    span t ~t0 (Trace.Fault { obj_id; vpn; refill_only = !refill_only });
    Stats.observe t.stats "fault_service_us"
      (Simtime.to_us (Simtime.sub (Kernel.now t.kernel) t0))
  end

and handle_fault t ~t0 =
  Stats.incr t.stats "faults";
  (match Imu.fault t.imu with
  | Some _ -> t.progress_events <- t.progress_events + 1
  | None -> ());
  (* Service time is measured from interrupt decode ([t0]): the SR/AR read
     is part of what the coprocessor waits out. *)
  Log.debug (fun m ->
      m "page fault: %s"
        (match Imu.fault t.imu with
        | Some (o, v) -> Printf.sprintf "object %d page %d" o v
        | None -> "spurious"));
  match Imu.fault t.imu with
  | None -> Stats.incr t.stats "spurious_irqs"
  | Some (obj_id, vpn) when translation t = Translation_mode.Iommu_sva ->
    handle_sva_fault t ~t0 ~obj_id ~vpn
  | Some (obj_id, vpn) -> (
    match Hashtbl.find_opt t.objects obj_id with
    | None -> t.error <- Some (Unmapped_object obj_id)
    | Some obj ->
      if vpn >= Mapped_object.page_span obj t.geom then
        t.error <- Some (Object_overflow { obj_id; vpn })
      else begin
        let resumed = ref false in
        let resume () =
          if not !resumed then begin
            resumed := true;
            Imu.write_cr t.imu Imu_regs.cr_resume
          end
        in
        let refill_only = ref false in
        (match Frame_table.find t.frames ~obj_id ~vpn with
        | Some frame ->
          (* Page already resident: the TLB had no room for its entry.
             Pure refill. *)
          refill_only := true;
          Stats.incr t.stats "tlb_refill_faults";
          refill_tlb t ~frame ~obj_id ~vpn
        | None -> (
          match obtain_frame t with
          | None -> t.error <- Some No_frames
          | Some frame ->
            install_page t ~frame ~obj ~vpn;
            if t.cfg.overlap_prefetch then begin
              (* Restart the coprocessor first: the speculative transfers
                 below then overlap its execution. *)
              resume ();
              try_prefetch t ~obj ~vpn ~protect:[ frame ]
            end
            else try_prefetch t ~obj ~vpn ~protect:[ frame ]));
        if t.error = None then resume ();
        span t ~t0 (Trace.Fault { obj_id; vpn; refill_only = !refill_only });
        Stats.observe t.stats "fault_service_us"
          (Simtime.to_us (Simtime.sub (Kernel.now t.kernel) t0))
      end)

(* FPGA_EXECUTE "performs the mapping": before the coprocessor starts, as
   many object pages as there are free frames are placed eagerly, in object
   identifier order. Working sets that fit the dual-port memory therefore
   run without a single fault — the paper's 2 KB adpcmdecode case — and
   larger ones only fault on the tail. *)
and premap t =
  let objs =
    Hashtbl.fold (fun _ o acc -> o :: acc) t.objects []
    |> List.sort (fun a b ->
           Int.compare a.Mapped_object.id b.Mapped_object.id)
  in
  List.iter
    (fun obj ->
      let span = Mapped_object.page_span obj t.geom in
      for vpn = 0 to span - 1 do
        match Frame_table.free_frame t.frames with
        | Some frame ->
          if Frame_table.find t.frames ~obj_id:obj.Mapped_object.id ~vpn = None
          then begin
            install_page t ~frame ~obj ~vpn;
            Stats.incr t.stats "premapped"
          end
        | None -> ()
      done)
    objs

and handle_fin t =
  t.progress_events <- t.progress_events + 1;
  Log.debug (fun m ->
      m "end of operation: flushing %d resident pages"
        (Frame_table.held_count t.frames));
  let cost = Kernel.cost t.kernel in
  (* Copy back to user space all the dirty data currently in the dual-port
     memory, then drop every mapping. *)
  (match translation t with
  | Translation_mode.Paper_objects ->
    List.iter
      (fun (frame, obj_id, vpn) ->
        writeback_if_dirty t ~frame ~obj_id ~vpn;
        invalidate_tlb_for_frame t ~frame;
        Frame_table.release t.frames ~frame;
        Hashtbl.remove t.frame_dirty frame)
      (Frame_table.resident t.frames)
  | Translation_mode.Iommu_sva ->
    List.iter
      (fun (frame, _asid, vpn) ->
        let dirty = frame_is_dirty t ~frame in
        invalidate_tlb_for_frame t ~frame;
        sva_writeback_if_dirty t ~frame ~vpn ~dirty;
        (match t.page_table with
        | Some pt -> Rvi_os.Page_table.unmap pt ~vpn
        | None -> ());
        Frame_table.release t.frames ~frame;
        Hashtbl.remove t.frame_dirty frame)
      (Frame_table.resident t.frames));
  (match Frame_table.param_frame t.frames with
  | Some frame ->
    Frame_table.release t.frames ~frame;
    Imu.set_param_page t.imu None
  | None -> ());
  Kernel.charge t.kernel Accounting.Sw_os ~cycles:cost.Cost_model.page_bookkeeping;
  (match t.caller with
  | Some pid ->
    Kernel.charge t.kernel Accounting.Sw_os ~cycles:cost.Cost_model.process_wakeup;
    Rvi_os.Sched.wake (Kernel.sched t.kernel) ~pid
  | None -> ());
  t.finished <- true

let config t = t.cfg
let kernel t = t.kernel
let set_abort_hook t f = t.on_abort <- f

(* Platform pooling: re-arm the VIM for the next run with a freshly built
   configuration (new policy state, injector, recovery parameters) and no
   interface state left from the previous one. Structure — the IRQ handler
   registration and the abort hook — is kept; only state is scrubbed. *)
let reset t cfg =
  t.cfg <- cfg;
  Hashtbl.reset t.objects;
  Hashtbl.reset t.written_back;
  Hashtbl.reset t.frame_dirty;
  Frame_table.release_all t.frames;
  t.page_table <- None;
  t.caller <- None;
  t.walk_retry_vpn <- -1;
  t.walk_retry_count <- 0;
  t.finished <- false;
  t.error <- None;
  t.progress_events <- 0;
  Stats.reset t.stats

(* Leave no interface state behind after a failed execution: drop every
   translation, release every frame (parameter page included) and reset the
   IMU, so the failure cannot wedge the next FPGA_EXECUTE. Dirty pages are
   deliberately not written back — after an abort their contents are
   suspect. *)
let abort_cleanup t =
  Stats.incr t.stats "aborts";
  Tlb.invalidate_all (Imu.tlb t.imu);
  (match Imu.l2 t.imu with Some l2 -> Tlb.invalidate_all l2 | None -> ());
  (match t.page_table with
  | Some pt -> Rvi_os.Page_table.clear pt
  | None -> ());
  Frame_table.release_all t.frames;
  Hashtbl.reset t.frame_dirty;
  Imu.set_param_page t.imu None;
  Imu.write_cr t.imu Imu_regs.cr_reset;
  (* A hung execution leaves the coprocessor mid-access, waiting for a
     TLBHIT that will never come; resetting the IMU alone would wedge the
     next FPGA_EXECUTE. *)
  t.on_abort ();
  Kernel.charge t.kernel Accounting.Sw_os
    ~cycles:(Kernel.cost t.kernel).Cost_model.page_bookkeeping

let map_object t obj =
  let id = obj.Mapped_object.id in
  if Hashtbl.mem t.objects id then
    Error (Printf.sprintf "object identifier %d already mapped" id)
  else begin
    Hashtbl.add t.objects id obj;
    Ok ()
  end

let unmap_all t = Hashtbl.reset t.objects

(* SVA mode's whole FPGA_MAP_OBJECT backend: program the IMU window
   register rebasing the object's accesses onto the caller's VA. One
   device register write — no kernel bookkeeping, which is the point. *)
let sva_note_object t ~id ~base =
  if id < 0 || id > Cp_port.max_data_obj then
    Error (Printf.sprintf "object identifier %d out of range" id)
  else begin
    Imu.set_sva_window t.imu ~obj:id ~base;
    Kernel.charge t.kernel Accounting.Sw_imu
      ~cycles:(Kernel.cost t.kernel).Cost_model.tlb_update;
    Ok ()
  end

let objects t =
  Hashtbl.fold (fun _ o acc -> o :: acc) t.objects []
  |> List.sort (fun a b -> Int.compare a.Mapped_object.id b.Mapped_object.id)

let find_object t ~id = Hashtbl.find_opt t.objects id

let execute t ~params =
  let param_capacity = Rvi_mem.Dpram.page_size t.dpram / 4 in
  if Frame_table.frames t.frames < 2 then Error No_frames
  else if List.length params > param_capacity then
    Error (Too_many_params { given = List.length params; capacity = param_capacity })
  else begin
    let kernel = t.kernel in
    let cost = Kernel.cost kernel in
    let engine = Kernel.engine kernel in
    let irq = Kernel.irq kernel in
    (* Reset the interface state left by any previous execution. *)
    Frame_table.release_all t.frames;
    Tlb.invalidate_all (Imu.tlb t.imu);
    (match Imu.l2 t.imu with Some l2 -> Tlb.invalidate_all l2 | None -> ());
    Imu.write_cr t.imu Imu_regs.cr_reset;
    Hashtbl.reset t.written_back;
    Hashtbl.reset t.frame_dirty;
    t.walk_retry_vpn <- -1;
    t.walk_retry_count <- 0;
    t.finished <- false;
    t.error <- None;
    Stats.incr t.stats "executions";
    let texec = Kernel.now kernel in
    emit t Trace.Exec_begin;
    (* Seed the parameter-passing page (physical page 0); cleared first so
       a short parameter list never exposes a previous run's words. *)
    Frame_table.set_param t.frames ~frame:0;
    Rvi_mem.Dpram.clear_page t.dpram ~page:0;
    Imu.set_param_page t.imu (Some 0);
    List.iteri
      (fun i v ->
        Rvi_mem.Dpram.cpu_write32 t.dpram (4 * i) v;
        Kernel.charge kernel Accounting.Sw_os ~cycles:cost.Cost_model.param_word)
      params;
    let sched = Kernel.sched kernel in
    let caller = Rvi_os.Sched.current sched in
    (match translation t with
    | Translation_mode.Paper_objects ->
      if t.cfg.eager_mapping then premap t
    | Translation_mode.Iommu_sva ->
      (* Bind the caller's (empty) page table to the walker: pure demand
         paging — SVA has no object extents to pre-map from, which is
         exactly the trade the translation ablation measures. *)
      let pt = caller.Rvi_os.Proc.page_table in
      Rvi_os.Page_table.clear pt;
      t.page_table <- Some pt;
      Imu.set_page_table t.imu (Some pt));
    (* Put the caller to interruptible sleep for the duration. *)
    if caller.Rvi_os.Proc.pid <> 0 then begin
      t.caller <- Some caller.Rvi_os.Proc.pid;
      Rvi_os.Sched.sleep_current sched
    end
    else t.caller <- None;
    List.iter Rvi_sim.Clock.start t.clocks;
    Imu.write_cr t.imu Imu_regs.cr_start;
    (* The watchdog bounds the gap between progress points (interrupt
       services), not the whole execution: each serviced interrupt re-arms
       it. With an injector attached the wait is sliced at the recovery
       poll interval so the VIM can read SR and catch a latched cause whose
       interrupt edge was lost. *)
    let deadline = ref (Simtime.add (Engine.now engine) t.cfg.watchdog) in
    let rearm () = deadline := Simtime.add (Engine.now engine) t.cfg.watchdog in
    let polling =
      t.cfg.injector <> None && Simtime.(Simtime.zero < t.cfg.recovery.poll)
    in
    let acct = Kernel.accounting kernel in
    let result =
      let watchdog () =
        emit t Trace.Watchdog;
        Stats.incr t.stats "watchdog_fires";
        t.error <- Some Hardware_stall
      in
      let rec pump hw_seg_start =
        let slice_end =
          if polling then
            Simtime.min !deadline
              (Simtime.add (Engine.now engine) t.cfg.recovery.poll)
          else !deadline
        in
        (* [slice_end] is a sound horizon: inside the wait the only things
           that can flip the condition early are time reaching [slice_end]
           and the IRQ controller turning pending — and the latter requests
           an engine break (wired in [Kernel.create]), ending any inline
           edge batch at the raising edge. [t.finished]/[t.error] only
           change in interrupt service and watchdog code, outside this
           wait. *)
        Engine.run_while ~horizon:slice_end engine (fun () ->
            (not (Rvi_os.Irq.any_pending irq))
            && (not t.finished) && t.error = None
            && Simtime.(Engine.now engine < slice_end));
        Accounting.add acct Accounting.Hw
          (Simtime.sub (Engine.now engine) hw_seg_start);
        if Rvi_os.Irq.any_pending irq then begin
          let p0 = t.progress_events in
          ignore (Kernel.service_interrupts kernel);
          (* Progress means a serviced cause on THIS interface (fin or
             fault), not a mere edge: re-arming on a spurious interrupt
             would let a glitching controller hold the watchdog off
             forever over a hung coprocessor — the interface would never
             be reclaimed. (Found by the chaos harness: hang +
             spurious-IRQ rate with the watchdog notionally disabled
             never terminated.) Counting this VIM's serviced causes
             rather than the absence of spurious ticks also keeps another
             station's interrupt traffic — serviced by the same kernel
             dispatch — from re-arming this tenant's watchdog. *)
          if t.progress_events > p0 then rearm ();
          if t.finished || t.error <> None then ()
          else pump (Engine.now engine)
        end
        else if t.finished || t.error <> None then ()
        else if Simtime.(Engine.now engine < !deadline) then begin
          (* Quiet slice. A spurious edge can glitch the line at any
             time — one opportunity per slice — and is serviced (and
             counted) through the normal dispatch path. *)
          (match t.cfg.injector with
          | Some inj
            when Rvi_inject.Injector.fire inj Rvi_inject.Fault.Irq_spurious ->
            Rvi_os.Irq.raise_line irq ~line:t.irq_line
          | _ -> ());
          if polling && not (Rvi_os.Irq.any_pending irq) then begin
            (* Poll SR: a fault or fin latched with no pending interrupt
               means the edge was lost — service the cause directly. *)
            Kernel.charge kernel Accounting.Sw_imu
              ~cycles:cost.Cost_model.fault_decode;
            let sr = Imu.read_sr t.imu in
            if
              Imu_regs.test sr Imu_regs.sr_fault
              || Imu_regs.test sr Imu_regs.sr_fin
            then begin
              Stats.incr t.stats "lost_irq_recovered";
              emit t (Trace.Recover { what = "lost_irq"; retries = 0 });
              handle_irq t;
              rearm ()
            end
          end;
          if t.finished || t.error <> None then ()
          else pump (Engine.now engine)
        end
        else watchdog ()
      in
      (try pump (Engine.now engine) with Engine.Stalled -> watchdog ());
      match t.error with Some e -> Error e | None -> Ok ()
    in
    List.iter Rvi_sim.Clock.stop t.clocks;
    (match result with Error _ -> abort_cleanup t | Ok () -> ());
    (match t.caller with
    | Some pid ->
      (* The fin handler already woke the caller on the happy path — waking
         again here was a double-wake (a redundant [Sched.wake] on a ready
         process). Only the error paths that bypass [handle_fin] still need
         the wake so the caller can observe the failure. *)
      if not t.finished then Rvi_os.Sched.wake sched ~pid;
      ignore (Rvi_os.Sched.schedule sched);
      t.caller <- None
    | None -> ());
    span t ~t0:texec (Trace.Exec_end { ok = Result.is_ok result });
    result
  end

(* {1 Sliced execution (the multi-tenant service)}

   [execute] drives one FPGA_EXECUTE to completion with the caller
   asleep. The service needs the same machine cut into slices so a
   tenant can be preempted between quanta: [exec_start] performs the
   prologue and starts the coprocessor, [exec_pump] advances simulated
   time up to a horizon servicing interrupts exactly as [execute]'s pump
   does, and [exec_preempt]/[exec_resume] swap the whole interface
   context (IMU flip-flops, TLB images, frame table, dual-port RAM
   contents, VIM bookkeeping) out and back in.

   Sessions never sleep or wake a process: admission control lives in
   the service above, and keeping the scheduler out of the loop is what
   closes the cross-tenant wake hazard the single-tenant path tolerated
   ([t.caller] stays [None] throughout). *)

type session = {
  mutable s_deadline : Simtime.t;  (* watchdog deadline, re-armed on progress *)
  s_t0 : Simtime.t;  (* Exec_begin timestamp, for the Exec_end span *)
}

type context = {
  ctx_imu : Imu.context;
  ctx_frames : Frame_table.image;
  ctx_pages : Bytes.t array;  (* full dual-port RAM image, one per page *)
  ctx_written_back : (int * int) list;
  ctx_frame_dirty : int list;
  ctx_objects : (int * Mapped_object.t) list;
  ctx_page_table : Rvi_os.Page_table.t option;
  ctx_walk_retry_vpn : int;
  ctx_walk_retry_count : int;
  ctx_wd_left : Simtime.t;  (* unspent watchdog budget at preemption *)
  ctx_t0 : Simtime.t;
}

let exec_start ?page_table t ~params =
  let param_capacity = Rvi_mem.Dpram.page_size t.dpram / 4 in
  if Frame_table.frames t.frames < 2 then Error No_frames
  else if List.length params > param_capacity then
    Error
      (Too_many_params { given = List.length params; capacity = param_capacity })
  else begin
    let kernel = t.kernel in
    let cost = Kernel.cost kernel in
    (* Reset the interface state left by any previous execution. *)
    Frame_table.release_all t.frames;
    Tlb.invalidate_all (Imu.tlb t.imu);
    (match Imu.l2 t.imu with Some l2 -> Tlb.invalidate_all l2 | None -> ());
    Imu.write_cr t.imu Imu_regs.cr_reset;
    Hashtbl.reset t.written_back;
    Hashtbl.reset t.frame_dirty;
    t.walk_retry_vpn <- -1;
    t.walk_retry_count <- 0;
    t.finished <- false;
    t.error <- None;
    Stats.incr t.stats "executions";
    let texec = Kernel.now kernel in
    emit t Trace.Exec_begin;
    Frame_table.set_param t.frames ~frame:0;
    Rvi_mem.Dpram.clear_page t.dpram ~page:0;
    Imu.set_param_page t.imu (Some 0);
    List.iteri
      (fun i v ->
        Rvi_mem.Dpram.cpu_write32 t.dpram (4 * i) v;
        Kernel.charge kernel Accounting.Sw_os ~cycles:cost.Cost_model.param_word)
      params;
    (match translation t with
    | Translation_mode.Paper_objects ->
      if t.cfg.eager_mapping then premap t
    | Translation_mode.Iommu_sva ->
      let pt =
        match page_table with
        | Some pt -> pt
        | None ->
          (Rvi_os.Sched.current (Kernel.sched kernel)).Rvi_os.Proc.page_table
      in
      Rvi_os.Page_table.clear pt;
      t.page_table <- Some pt;
      Imu.set_page_table t.imu (Some pt));
    t.caller <- None;
    List.iter Rvi_sim.Clock.start t.clocks;
    Imu.write_cr t.imu Imu_regs.cr_start;
    Ok
      {
        s_deadline = Simtime.add (Kernel.now kernel) t.cfg.watchdog;
        s_t0 = texec;
      }
  end

let exec_pump t (s : session) ~until =
  let kernel = t.kernel in
  let cost = Kernel.cost kernel in
  let engine = Kernel.engine kernel in
  let irq = Kernel.irq kernel in
  let acct = Kernel.accounting kernel in
  let polling =
    t.cfg.injector <> None && Simtime.(Simtime.zero < t.cfg.recovery.poll)
  in
  let rearm () = s.s_deadline <- Simtime.add (Engine.now engine) t.cfg.watchdog in
  let watchdog () =
    emit t Trace.Watchdog;
    Stats.incr t.stats "watchdog_fires";
    t.error <- Some Hardware_stall
  in
  let rec pump hw_seg_start =
    let slice_end =
      let d = Simtime.min s.s_deadline until in
      if polling then
        Simtime.min d (Simtime.add (Engine.now engine) t.cfg.recovery.poll)
      else d
    in
    Engine.run_while ~horizon:slice_end engine (fun () ->
        (not (Rvi_os.Irq.any_pending irq))
        && (not t.finished) && t.error = None
        && Simtime.(Engine.now engine < slice_end));
    Accounting.add acct Accounting.Hw
      (Simtime.sub (Engine.now engine) hw_seg_start);
    if Rvi_os.Irq.any_pending irq then begin
      (* Pending causes are serviced even at quantum expiry, so a
         [`Running] return always leaves the interface quiesced — the
         scheduler can preempt without a latched interrupt in flight. *)
      let p0 = t.progress_events in
      ignore (Kernel.service_interrupts kernel);
      if t.progress_events > p0 then rearm ();
      if t.finished || t.error <> None then () else pump (Engine.now engine)
    end
    else if t.finished || t.error <> None then ()
    else if Simtime.(until <= Engine.now engine) then ()
    else if Simtime.(Engine.now engine < s.s_deadline) then begin
      (match t.cfg.injector with
      | Some inj
        when Rvi_inject.Injector.fire inj Rvi_inject.Fault.Irq_spurious ->
        Rvi_os.Irq.raise_line irq ~line:t.irq_line
      | _ -> ());
      if polling && not (Rvi_os.Irq.any_pending irq) then begin
        Kernel.charge kernel Accounting.Sw_imu
          ~cycles:cost.Cost_model.fault_decode;
        let sr = Imu.read_sr t.imu in
        if
          Imu_regs.test sr Imu_regs.sr_fault
          || Imu_regs.test sr Imu_regs.sr_fin
        then begin
          Stats.incr t.stats "lost_irq_recovered";
          emit t (Trace.Recover { what = "lost_irq"; retries = 0 });
          handle_irq t;
          rearm ()
        end
      end;
      if t.finished || t.error <> None then () else pump (Engine.now engine)
    end
    else watchdog ()
  in
  (try pump (Engine.now engine) with Engine.Stalled -> watchdog ());
  if t.finished || t.error <> None then begin
    List.iter Rvi_sim.Clock.stop t.clocks;
    let result = match t.error with Some e -> Error e | None -> Ok () in
    (match result with Error _ -> abort_cleanup t | Ok () -> ());
    span t ~t0:s.s_t0 (Trace.Exec_end { ok = Result.is_ok result });
    `Done result
  end
  else `Running

let exec_preempt t (s : session) =
  List.iter Rvi_sim.Clock.stop t.clocks;
  let n_pages = Rvi_mem.Dpram.n_pages t.dpram in
  let page_size = Rvi_mem.Dpram.page_size t.dpram in
  let pages =
    Array.init n_pages (fun page ->
        let b = Bytes.create page_size in
        Rvi_mem.Dpram.store_page t.dpram ~page b ~dst:0 ~len:page_size;
        b)
  in
  let ctx =
    {
      ctx_imu = Imu.save_context t.imu;
      ctx_frames = Frame_table.save t.frames;
      ctx_pages = pages;
      ctx_written_back =
        Hashtbl.fold (fun k () acc -> k :: acc) t.written_back []
        |> List.sort compare;
      ctx_frame_dirty =
        Hashtbl.fold (fun k () acc -> k :: acc) t.frame_dirty []
        |> List.sort compare;
      ctx_objects =
        Hashtbl.fold (fun id o acc -> (id, o) :: acc) t.objects []
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b);
      ctx_page_table = t.page_table;
      ctx_walk_retry_vpn = t.walk_retry_vpn;
      ctx_walk_retry_count = t.walk_retry_count;
      (* A [`Running] return always leaves now <= deadline, so the
         remainder is never negative. *)
      ctx_wd_left = Simtime.sub s.s_deadline (Kernel.now t.kernel);
      ctx_t0 = s.s_t0;
    }
  in
  (* The context switch is charged like any other interface transfer: the
     whole dual-port image moves out, plus the bookkeeping to park it. *)
  charge_copy t (n_pages * page_size);
  Kernel.charge t.kernel Accounting.Sw_os
    ~cycles:(Kernel.cost t.kernel).Cost_model.page_bookkeeping;
  Stats.incr t.stats "preemptions";
  ctx

let exec_resume t ctx =
  let n_pages = Rvi_mem.Dpram.n_pages t.dpram in
  let page_size = Rvi_mem.Dpram.page_size t.dpram in
  Frame_table.restore t.frames ctx.ctx_frames;
  Array.iteri
    (fun page b ->
      (* Whole-page reload; the page parity is recomputed by the load, a
         modelling liberty of the save/restore DMA path. *)
      Rvi_mem.Dpram.load_page t.dpram ~page b ~src:0 ~len:page_size)
    ctx.ctx_pages;
  Hashtbl.reset t.written_back;
  List.iter (fun k -> Hashtbl.replace t.written_back k ()) ctx.ctx_written_back;
  Hashtbl.reset t.frame_dirty;
  List.iter (fun k -> Hashtbl.replace t.frame_dirty k ()) ctx.ctx_frame_dirty;
  Hashtbl.reset t.objects;
  List.iter (fun (id, o) -> Hashtbl.replace t.objects id o) ctx.ctx_objects;
  t.page_table <- ctx.ctx_page_table;
  Imu.set_page_table t.imu ctx.ctx_page_table;
  t.walk_retry_vpn <- ctx.ctx_walk_retry_vpn;
  t.walk_retry_count <- ctx.ctx_walk_retry_count;
  t.finished <- false;
  t.error <- None;
  t.caller <- None;
  Imu.restore_context t.imu ctx.ctx_imu;
  charge_copy t (n_pages * page_size);
  Kernel.charge t.kernel Accounting.Sw_os
    ~cycles:(Kernel.cost t.kernel).Cost_model.page_bookkeeping;
  Stats.incr t.stats "resumes";
  List.iter Rvi_sim.Clock.start t.clocks;
  (* Time parked does not count against the tenant's progress budget,
     but the budget itself is NOT refreshed: the watchdog resumes with
     whatever it had left at preemption. Re-arming from scratch would
     let a hung tenant that is preempted every quantum evade its
     watchdog forever — a cross-tenant livelock. *)
  { s_deadline = Simtime.add (Kernel.now t.kernel) ctx.ctx_wd_left;
    s_t0 = ctx.ctx_t0 }

let stats t = t.stats
let frame_table t = t.frames

(* Cross-check the software frame table against the hardware TLB — the
   invariants any injection run must preserve. Used by the property tests
   and available to a paranoid campaign after every run. *)
let consistency t =
  let levels =
    (("L1", Imu.tlb t.imu)
    ::
    (match Imu.l2 t.imu with Some l2 -> [ ("L2", l2) ] | None -> []))
  in
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  (* 1. No (object, page) pair resident in two frames. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (frame, obj_id, vpn) ->
      match Hashtbl.find_opt seen (obj_id, vpn) with
      | Some other ->
        err "page (%d,%d) resident in frames %d and %d" obj_id vpn other frame
      | None -> Hashtbl.add seen (obj_id, vpn) frame)
    (Frame_table.resident t.frames);
  (* 2. Every valid TLB entry — at either level — translates to a frame
     the table holds for exactly that page. (In SVA mode entries are
     tagged [sva_asid], the obj_id the frame table holds.) *)
  List.iter
    (fun (lvl, tlb) ->
      for slot = 0 to Tlb.entries tlb - 1 do
        let e = Tlb.get tlb ~slot in
        if e.Tlb.valid then begin
          match Frame_table.slot t.frames ~frame:e.Tlb.ppn with
          | Frame_table.Held { obj_id; vpn; _ } ->
            if obj_id <> e.Tlb.obj_id || vpn <> e.Tlb.vpn then
              err "%s TLB slot %d maps (%d,%d) to frame %d held by (%d,%d)"
                lvl slot e.Tlb.obj_id e.Tlb.vpn e.Tlb.ppn obj_id vpn
          | Frame_table.Free ->
            err "%s TLB slot %d points at free frame %d" lvl slot e.Tlb.ppn
          | Frame_table.Param ->
            err "%s TLB slot %d points at the parameter frame %d" lvl slot
              e.Tlb.ppn
        end
      done)
    levels;
  (* 3. No dirty frame without an owner that can flush it: a mapped
     object (paper mode) or a present PTE (SVA mode). *)
  let check_dirty what frame =
    match Frame_table.slot t.frames ~frame with
    | Frame_table.Held { obj_id; vpn; _ } -> (
      match translation t with
      | Translation_mode.Paper_objects ->
        if not (Hashtbl.mem t.objects obj_id) then
          err "%s frame %d owned by unmapped object %d" what frame obj_id
      | Translation_mode.Iommu_sva -> (
        match t.page_table with
        | None -> err "%s frame %d with no page table bound" what frame
        | Some pt -> (
          match Rvi_os.Page_table.find pt ~vpn with
          | Some pte when pte.Rvi_os.Page_table.frame = frame -> ()
          | Some pte ->
            err "%s frame %d: PTE for page %d points at frame %d" what frame
              vpn pte.Rvi_os.Page_table.frame
          | None -> err "%s frame %d holds page %d with no PTE" what frame vpn)))
    | Frame_table.Free -> err "free frame %d marked %s" frame what
    | Frame_table.Param -> err "parameter frame %d marked %s" frame what
  in
  Hashtbl.iter (fun frame () -> check_dirty "dirty" frame) t.frame_dirty;
  List.iter
    (fun (_lvl, tlb) ->
      for slot = 0 to Tlb.entries tlb - 1 do
        let e = Tlb.get tlb ~slot in
        if e.Tlb.valid && e.Tlb.dirty then check_dirty "tlb-dirty" e.Tlb.ppn
      done)
    levels;
  match !errors with
  | [] -> Ok ()
  | es -> Error (String.concat "; " (List.rev es))
