(** External SDRAM holding user-space data.

    The 64 MB board memory where application buffers live. The simulated
    kernel copies pages between here and the dual-port RAM; applications
    (and software baselines) read and write their buffers directly. A bump
    allocator hands out buffer addresses — the simulated processes never
    free individual buffers, whole address spaces are discarded at once,
    exactly like the arena lifetime of the short-lived benchmark programs. *)

type t

val create : size:int -> t
val size : t -> int

val alloc : t -> ?align:int -> int -> int
(** [alloc t n] reserves [n] bytes and returns their base address.
    [align] (default 4, power of two) aligns the base. Raises [Out_of_memory]
    if the arena is exhausted. *)

val used : t -> int
val release_all : t -> unit
(** Resets the allocator (contents are left in place). *)

val reset : t -> unit
(** Resets the allocator {e and} zeroes every byte that was ever inside the
    allocated region, restoring the memory image of a freshly created arena.
    Used by the platform pool so a reused SDRAM is indistinguishable from a
    new one. *)

val read8 : t -> int -> int
val write8 : t -> int -> int -> unit
val read16 : t -> int -> int
val write16 : t -> int -> int -> unit
val read32 : t -> int -> int
val write32 : t -> int -> int -> unit

val write_bytes : t -> int -> Bytes.t -> unit

val read_bytes : t -> int -> len:int -> Bytes.t
(** Allocates a fresh buffer per call; hot paths should prefer
    {!read_into} with a reused scratch buffer. *)

val read_into : t -> int -> Bytes.t -> dst:int -> len:int -> unit
(** [read_into t addr buf ~dst ~len] copies [len] bytes starting at [addr]
    into [buf] at offset [dst] — the reuse-buffer variant of
    {!read_bytes}. *)

val blit_out : t -> src:int -> Bytes.t -> dst:int -> len:int -> unit
val blit_in : Bytes.t -> src:int -> t -> dst:int -> len:int -> unit

val raw : t -> Ram.t
(** The backing {!Ram}, for page-granular device-to-device blits (the VIM
    copy engine moves whole pages between SDRAM and DP-RAM without bouncing
    through an intermediate buffer). *)
