(** Discrete-event simulation engine.

    The engine owns the global simulated clock and an event queue. Hardware
    clock domains ({!Clock}) schedule their edges here; the simulated
    operating system consumes software time by running the engine forward
    with {!advance}. *)

type t

val create : unit -> t

val now : t -> Simtime.t
(** Current simulated time. *)

val schedule_at : t -> Simtime.t -> (unit -> unit) -> unit
(** [schedule_at t time f] runs [f] when simulated time reaches [time].
    Raises [Invalid_argument] if [time] is in the past. *)

val schedule_after : t -> Simtime.t -> (unit -> unit) -> unit
(** [schedule_after t delay f] is [schedule_at t (now t + delay) f]. *)

val step : t -> bool
(** Executes the earliest pending event. Returns [false] (and does nothing)
    if no event is pending. *)

val run_until : t -> Simtime.t -> unit
(** Executes every event scheduled strictly before or at the given time,
    then sets the clock to exactly that time. *)

val advance : t -> Simtime.t -> unit
(** [advance t dt] is [run_until t (now t + dt)]: consumes [dt] of simulated
    time, executing any hardware events that fall inside the span. This is
    how software execution cost is charged to the timeline. *)

val run_while : ?horizon:Simtime.t -> t -> (unit -> bool) -> unit
(** [run_while t cond] steps the engine as long as [cond ()] is [true] and
    events remain. Raises [Stalled] if the queue drains while [cond] still
    holds — that means the simulated hardware deadlocked.

    [horizon], when given, promises that [cond] becomes false no later
    than that time and that the only thing (other than time) that can turn
    [cond] false is an event calling {!request_break} (e.g. an interrupt
    turning pending). Clock domains use the promise to batch edges inline
    up to the horizon without re-entering the event queue between them. *)

(** {1 Inline batching support}

    The hooks {!Clock} uses to run many edges inside one queue event.
    A run loop publishes its span bound as the {!horizon}; a clock batch
    may advance time itself with {!jump_to} as long as it never passes the
    horizon, a queued event, or an un-consumed break request. *)

val horizon : t -> Simtime.t option
(** Bound of the run span currently executing, [None] outside {!run_until}
    / {!advance} and outside a {!run_while} given an explicit horizon. *)

val peek_next : t -> Simtime.t option
(** Time of the earliest queued event. *)

val peek_ps : t -> int
(** Time of the earliest queued event in picoseconds, [max_int] when the
    queue is empty — the allocation-free form of {!peek_next} the clock's
    per-edge batching check uses. *)

val request_break : t -> unit
(** Asks the innermost inline batch to stop after the current edge so the
    driving run loop re-checks its condition. Called when an interrupt
    line turns pending. A no-op outside a batch (the flag is cleared when
    a run loop begins). *)

val take_break : t -> bool
(** Consumes a pending break request: true if one was pending. *)

val jump_to : t -> Simtime.t -> unit
(** Advances simulated time without dispatching events, for inline-batched
    clock edges. Raises [Invalid_argument] when the target is in the past
    or a queued event would be skipped. *)

val jump_unchecked : t -> Simtime.t -> unit
(** {!jump_to} without the guards, for callers that have already bounded
    the target by the queue head and the current time {e this very edge}
    (the clock's single-slot inline loop). Jumping past a queued event
    through this entry point corrupts the timeline silently — when in any
    doubt, use {!jump_to}. *)

exception Stalled
(** Raised by {!run_while} when no event can make further progress. *)

val events_processed : t -> int
(** Total number of events executed so far (for engine benchmarks). *)

val reset : t -> unit
(** Discards all queued events and rewinds simulated time to zero, leaving
    the engine observationally identical to a fresh {!create}. Only safe
    when every component scheduled on the engine is reset alongside it —
    the platform pool's reuse path. *)
