lib/core/imu.mli: Cp_port Rvi_mem Rvi_sim Tlb
