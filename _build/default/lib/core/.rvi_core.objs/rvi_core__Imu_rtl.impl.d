lib/core/imu_rtl.ml: Array Cp_port Imu_regs Printf Rvi_hw Rvi_mem Rvi_sim
