(** Multi-coprocessor arbiter.

    §2 of the paper speaks of "the corresponding coprocessor(s)" — plural.
    This block lets several coprocessors share one IMU (and therefore the
    same paged dual-port memory and the same VIM, unchanged): each child
    gets its own [CP_*] bundle; the arbiter forwards one outstanding
    request at a time to the upstream port, round-robin, and routes the
    response back to its issuer. [CP_START] is re-broadcast to every
    child; the upstream [CP_FIN] is the conjunction of the children's.

    Children must use disjoint object identifiers. Parameter-page reads
    are relocated per child — child [i] sees its scalars at the usual
    offsets while physically reading words [i * slot_words] onwards — so
    independent kernels keep their Figure 6 parameter layout.

    A registered (1-cycle each way) arbiter: a shared access costs two
    cycles more than a private one, the price of the port. *)

type t

val slot_words : int
(** Parameter words reserved per child (16). *)

val create : upstream:Rvi_core.Cp_port.t -> children:int -> t
(** Raises [Invalid_argument] unless [1 <= children <= 4]. *)

val child_port : t -> int -> Rvi_core.Cp_port.t
(** The bundle to instantiate child [i]'s coprocessor against. *)

val component : t -> Rvi_sim.Clock.component
(** Register on the IMU clock, between the IMU and the child ports'
    synchronisers. *)

val grants : t -> int array
(** Requests forwarded per child (arbitration fairness counters). *)
