type t = { ram : Ram.t; geom : Page.geometry; stats : Rvi_sim.Stats.t }

let create geom =
  {
    ram = Ram.create ~size:(Page.total_bytes geom);
    geom;
    stats = Rvi_sim.Stats.create ();
  }

let geometry t = t.geom
let size t = Ram.size t.ram
let n_pages t = t.geom.Page.n_pages
let page_size t = t.geom.Page.page_size

let read t ~width addr =
  Rvi_sim.Stats.incr t.stats "pld_reads";
  Ram.read t.ram ~width addr

let write t ~width addr v =
  Rvi_sim.Stats.incr t.stats "pld_writes";
  Ram.write t.ram ~width addr v

let check_page t page op =
  if page < 0 || page >= n_pages t then
    invalid_arg (Printf.sprintf "Dpram.%s: page %d out of [0, %d)" op page (n_pages t))

let load_page t ~page buf ~src ~len =
  check_page t page "load_page";
  if len < 0 || len > page_size t then invalid_arg "Dpram.load_page: bad length";
  let base = Page.base t.geom page in
  Ram.blit_from_bytes buf ~src t.ram ~dst:base ~len;
  if len < page_size t then Ram.fill t.ram ~pos:(base + len) ~len:(page_size t - len) '\000';
  Rvi_sim.Stats.incr t.stats "pages_loaded"

let store_page t ~page buf ~dst ~len =
  check_page t page "store_page";
  if len < 0 || len > page_size t then invalid_arg "Dpram.store_page: bad length";
  let base = Page.base t.geom page in
  Ram.blit_to_bytes t.ram ~src:base buf ~dst ~len;
  Rvi_sim.Stats.incr t.stats "pages_stored"

let clear_page t ~page =
  check_page t page "clear_page";
  Ram.fill t.ram ~pos:(Page.base t.geom page) ~len:(page_size t) '\000'

let cpu_read32 t addr =
  Rvi_sim.Stats.incr t.stats "cpu_words";
  Ram.read32 t.ram addr

let cpu_write32 t addr v =
  Rvi_sim.Stats.incr t.stats "cpu_words";
  Ram.write32 t.ram addr v

let stats t = t.stats
